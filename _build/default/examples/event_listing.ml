(* Uncertain string listing: virus signatures in fuzzy logs (§6,
   "Practical motivation" and §2, "Event Monitoring").

   An RFID-based monitoring system produces one event stream per device;
   the readers are error-prone, so every event carries a probability
   distribution over event codes. Security wants the list of devices
   whose stream probably contains a threat signature — the uncertain
   string listing problem: the answer must cost time proportional to the
   number of devices listed, not to the total number of occurrences.

   Run with:  dune exec examples/event_listing.exe *)

module U = Pti_ustring.Ustring
module Sym = Pti_ustring.Sym
module Logp = Pti_prob.Logp
module L = Pti_core.Listing_index

(* Event codes: A(uth) B(adge-swipe) D(oor) E(rror) F(orced-entry)
   G(lass-break) M(otion) ... one letter per event class. *)
let codes = "ABDEFGM"

let simulate_stream rng len ~noise ~inject =
  let buf =
    Array.init len (fun _ ->
        let main = codes.[Random.State.int rng (String.length codes)] in
        if Random.State.float rng 1.0 < noise then begin
          let alt =
            let rec pick () =
              let c = codes.[Random.State.int rng (String.length codes)] in
              if c = main then pick () else c
            in
            pick ()
          in
          let p = 0.55 +. Random.State.float rng 0.35 in
          [|
            { U.sym = Sym.of_char main; prob = p };
            { U.sym = Sym.of_char alt; prob = 1.0 -. p };
          |]
        end
        else [| { U.sym = Sym.of_char main; prob = 1.0 } |])
  in
  (* optionally inject the threat signature, [copies] times, with
     reader noise *)
  (match inject with
  | None -> ()
  | Some (signature, confidence, copies) ->
      let siglen = String.length signature in
      for copy = 0 to copies - 1 do
        (* spread the copies over disjoint regions of the stream *)
        let region = len / copies in
        let start =
          (copy * region) + Random.State.int rng (Stdlib.max 1 (region - siglen))
        in
        String.iteri
          (fun k c ->
            if confidence >= 1.0 then
              buf.(start + k) <- [| { U.sym = Sym.of_char c; prob = 1.0 } |]
            else begin
              let alt = codes.[Random.State.int rng (String.length codes)] in
              let alt = if alt = c then 'M' else alt in
              buf.(start + k) <-
                [|
                  { U.sym = Sym.of_char c; prob = confidence };
                  { U.sym = Sym.of_char alt; prob = 1.0 -. confidence };
                |]
            end)
          signature
      done);
  U.make buf

let () =
  let rng = Random.State.make [| 99 |] in
  let signature = "FGFDA" in
  (* 12 device streams: devices 0-2 carry one high-confidence copy of
     the signature, devices 3-4 carry four low-confidence copies each
     (weak but repeated evidence), the rest are clean. *)
  let streams =
    List.init 12 (fun k ->
        let inject =
          if k < 3 then Some (signature, 0.9, 1)
          else if k < 5 then Some (signature, 0.75, 4)
          else None
        in
        simulate_stream rng 400 ~noise:0.15 ~inject)
  in
  Printf.printf
    "Indexing %d uncertain event streams (%d events total), signature %S...\n\n"
    (List.length streams)
    (List.fold_left (fun acc s -> acc + U.length s) 0 streams)
    signature;

  let index = L.build ~tau_min:0.05 streams in
  let index_or = L.build ~relevance:L.Rel_or ~tau_min:0.05 streams in

  let show title l =
    Printf.printf "%s\n" title;
    if l = [] then print_endline "  (none)"
    else
      List.iter
        (fun (doc, rel) ->
          Printf.printf "  device %2d  relevance %s\n" doc (Logp.to_string rel))
        l;
    print_newline ()
  in
  (* Rel_max: strongest single occurrence per stream. *)
  show "devices with a confident signature hit (Rel_max > 0.5):"
    (L.query_string index ~pattern:signature ~tau:0.5);
  show "devices with any plausible hit (Rel_max > 0.1):"
    (L.query_string index ~pattern:signature ~tau:0.1);
  (* Rel_or: weak repeated evidence accumulates. *)
  show "devices by accumulated evidence (Rel_or > 0.3):"
    (L.query_string index_or ~pattern:signature ~tau:0.3);

  (* Contrast with the naive approach the paper argues against: running
     a substring query on every stream separately. *)
  let naive_hits =
    List.filteri
      (fun _ d ->
        Logp.to_prob (Pti_ustring.Oracle.relevance_max d ~pattern:(Sym.of_string signature))
        > 0.5)
      streams
  in
  Printf.printf
    "naive per-stream scan agrees: %d device(s) above 0.5 (but costs a full \
     pass over all %d streams per query)\n"
    (List.length naive_hits) (List.length streams)
