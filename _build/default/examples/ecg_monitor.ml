(* Automatic ECG annotation search (§2, "Automatic ECG annotations").

   A Holter monitor annotates every heartbeat with a symbol — N (normal),
   L (left bundle branch block), R (right bundle branch block), A (atrial
   premature) and V (premature ventricular contraction) — but the signal
   is often ambiguous, so each beat carries a probability distribution.
   A doctor looks for diagnostic patterns such as "NNAV" (two normal
   beats, an atrial premature beat, then a premature ventricular
   contraction) with a confidence threshold.

   This example simulates a day-long annotated ECG stream, indexes it,
   and hunts for diagnostic patterns at different confidence levels, with
   one correlated pair of beats (a blocked beat makes the next annotation
   more likely to be abnormal).

   Run with:  dune exec examples/ecg_monitor.exe *)

module U = Pti_ustring.Ustring
module Correlation = Pti_ustring.Correlation
module Sym = Pti_ustring.Sym
module Logp = Pti_prob.Logp
module G = Pti_core.General_index

let beats = [| 'N'; 'L'; 'R'; 'A'; 'V' |]

(* Simulate the annotator: mostly confident N beats, occasional ectopy,
   and a configurable fraction of ambiguous beats where the software
   hedges between two or three labels. *)
let simulate rng n =
  let position i =
    ignore i;
    let r = Random.State.float rng 1.0 in
    if r < 0.70 then [| { U.sym = Sym.of_char 'N'; prob = 1.0 } |]
    else if r < 0.80 then begin
      (* clean ectopic beat *)
      let c = beats.(1 + Random.State.int rng 4) in
      [| { U.sym = Sym.of_char c; prob = 1.0 } |]
    end
    else begin
      (* ambiguous beat: the annotator gives a distribution *)
      let main = beats.(Random.State.int rng 5) in
      let alt =
        let rec pick () =
          let c = beats.(Random.State.int rng 5) in
          if c = main then pick () else c
        in
        pick ()
      in
      let p = 0.5 +. Random.State.float rng 0.35 in
      [|
        { U.sym = Sym.of_char main; prob = p };
        { U.sym = Sym.of_char alt; prob = 1.0 -. p };
      |]
    end
  in
  U.make (Array.init n position)

let () =
  let rng = Random.State.make [| 7 |] in
  let n = 10_000 in
  Printf.printf "Simulating %d annotated heartbeats...\n" n;
  let ecg = simulate rng n in

  (* Couple two adjacent ambiguous beats: if beat i is annotated V, the
     next beat is more likely to be V too (correlated uncertainty,
     §3.3). We look for an ambiguous V beat followed by another
     ambiguous beat and add a consistent rule. *)
  let find_correlatable () =
    let rec go i =
      if i + 1 >= n then None
      else begin
        let a = U.choices ecg i and b = U.choices ecg (i + 1) in
        let has_v cs = Array.exists (fun (c : U.choice) -> c.sym = Sym.of_char 'V' && c.prob < 1.0) cs in
        if has_v a && Array.length b > 1 then Some (i, b.(0)) else go (i + 1)
      end
    in
    go 0
  in
  let ecg =
    match find_correlatable () with
    | None -> ecg
    | Some (i, dep) ->
        let q = U.prob ecg ~pos:i ~sym:(Sym.of_char 'V') in
        (* choose conditionals consistent with the stored marginal m:
           q * p+ + (1 - q) * p- = m, biased towards p+ > m *)
        let m = dep.prob in
        let hi = Float.min 1.0 (m /. q) in
        let p_present = m +. ((hi -. m) /. 2.0) in
        let p_absent = (m -. (q *. p_present)) /. (1.0 -. q) in
        let rule =
          {
            Correlation.dep_pos = i + 1;
            dep_sym = dep.sym;
            src_pos = i;
            src_sym = Sym.of_char 'V';
            p_present;
            p_absent;
          }
        in
        Printf.printf
          "added correlation: beat %d's %c depends on beat %d being V \
           (p+ = %.3f, p- = %.3f, marginal %.3f)\n"
          (i + 1) (Sym.to_char dep.sym) i p_present p_absent m;
        U.make ~correlations:[ rule ]
          (Array.init n (fun j -> Array.copy (U.choices ecg j)))
  in

  let index = G.build ~tau_min:0.05 ecg in
  print_newline ();

  let diagnose pattern tau =
    let hits = G.query_string index ~pattern ~tau in
    Printf.printf "pattern %-5s tau %.2f: %d match(es)" pattern tau
      (List.length hits);
    (match hits with
    | (pos, p) :: _ ->
        Printf.printf "; strongest at beat %d (confidence %s)" pos
          (Logp.to_string p)
    | [] -> ());
    print_newline ()
  in
  (* The paper's example pattern plus a few clinically-flavoured ones. *)
  List.iter
    (fun tau ->
      diagnose "NNAV" tau;
      diagnose "VV" tau;
      diagnose "LRL" tau;
      diagnose "NVNV" tau)
    [ 0.05; 0.25; 0.5 ];

  print_newline ();
  Printf.printf "stream uncertainty: %.1f%% ambiguous beats; index: %s\n"
    (100.0 *. Pti_workload.Dataset.uncertainty ecg)
    (Pti_core.Space.to_string (G.size_words index))
