type t = float

let slack = 1e-9

let zero = neg_infinity
let one = 0.0

let of_prob p =
  if p < 0.0 || p > 1.0 +. slack then
    invalid_arg (Printf.sprintf "Logp.of_prob: %g not in [0, 1]" p)
  else if p >= 1.0 then one
  else log p

let of_prob_unchecked p = if p <= 0.0 then neg_infinity else log p

let to_prob t = if t >= 0.0 then 1.0 else exp t

let of_log x =
  if x > slack then invalid_arg (Printf.sprintf "Logp.of_log: %g > 0" x)
  else if x > 0.0 then one
  else x

let to_log t = t

let mul a b = a +. b

let div a b =
  if b = neg_infinity then invalid_arg "Logp.div: division by zero probability"
  else if a = neg_infinity then neg_infinity
  else a -. b

let div_exceeding_one a b =
  if b = neg_infinity then invalid_arg "Logp.div_exceeding_one: zero divisor"
  else a -. b

let compare = Float.compare
let equal = Float.equal
let ( >= ) (a : t) (b : t) = a >= b
let ( > ) (a : t) (b : t) = a > b
let ( <= ) (a : t) (b : t) = a <= b
let ( < ) (a : t) (b : t) = a < b

let max (a : t) (b : t) = if a >= b then a else b
let min (a : t) (b : t) = if a <= b then a else b

let is_zero t = t = neg_infinity

let approx_equal ?(eps = 1e-9) a b = Float.abs (to_prob a -. to_prob b) <= eps

let sub_prob t eps =
  let p = to_prob t -. eps in
  if p <= 0.0 then zero else of_prob_unchecked p

let pp ppf t = Format.fprintf ppf "%.6g" (to_prob t)

let to_string t = Format.asprintf "%a" pp t
