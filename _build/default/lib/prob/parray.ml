type t = {
  cum : float array; (* cum.(i) = sum of finite logs of positions [0..i-1] *)
  zeros : int array; (* zeros.(i) = number of zero-probability positions in [0..i-1] *)
  logs : Logp.t array; (* per-position values, for [get] *)
}

let of_logps logs =
  let n = Array.length logs in
  let cum = Array.make (n + 1) 0.0 in
  let zeros = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let l = Logp.to_log logs.(i) in
    if Logp.is_zero logs.(i) then begin
      cum.(i + 1) <- cum.(i);
      zeros.(i + 1) <- zeros.(i) + 1
    end
    else begin
      cum.(i + 1) <- cum.(i) +. l;
      zeros.(i + 1) <- zeros.(i)
    end
  done;
  { cum; zeros; logs = Array.copy logs }

let of_probs probs = of_logps (Array.map Logp.of_prob probs)

let length t = Array.length t.logs

let get t i = t.logs.(i)

let window t ~pos ~len =
  let n = length t in
  if len < 1 || pos < 0 || pos + len > n then
    invalid_arg
      (Printf.sprintf "Parray.window: pos=%d len=%d out of [0,%d)" pos len n);
  if t.zeros.(pos + len) - t.zeros.(pos) > 0 then Logp.zero
  else Logp.of_log (Float.min 0.0 (t.cum.(pos + len) -. t.cum.(pos)))

let prefix t j =
  if j < 0 || j > length t then invalid_arg "Parray.prefix: out of range";
  if t.zeros.(j) > 0 then Logp.zero
  else Logp.of_log (Float.min 0.0 t.cum.(j))
