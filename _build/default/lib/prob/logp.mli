(** Log-domain probabilities.

    The paper stores the successive multiplicative probability array [C]
    as raw products. Products of hundreds of probabilities underflow IEEE
    doubles, so every probability in this codebase is carried as its
    natural logarithm. A [Logp.t] is the log of a probability in [0, 1]:
    [zero] represents probability 0 (log = -infinity) and [one]
    probability 1 (log = 0). Values are totally ordered by the underlying
    float order, which coincides with the order on probabilities. *)

type t = private float

val zero : t
(** Probability 0, i.e. negative infinity in log space. *)

val one : t
(** Probability 1, i.e. 0 in log space. *)

val of_prob : float -> t
(** [of_prob p] is the log of [p]. Raises [Invalid_argument] unless
    [0 <= p <= 1 + eps] (a tiny slack absorbs parser rounding; values in
    [(1, 1+eps]] clamp to {!one}). *)

val of_prob_unchecked : float -> t
(** [of_prob_unchecked p] is [log p] with no range check. For hot paths
    where the caller guarantees [0 <= p <= 1]. *)

val to_prob : t -> float
(** Back to a plain probability in [0, 1]. *)

val of_log : float -> t
(** [of_log x] asserts [x <= 0] (up to rounding slack) and injects it. *)

val to_log : t -> float
(** The raw log value; [-infinity] for {!zero}. *)

val mul : t -> t -> t
(** Product of probabilities = sum of logs. *)

val div : t -> t -> t
(** Quotient of probabilities = difference of logs. [div x zero] raises
    [Invalid_argument]; [div zero x] is {!zero}. The result may exceed
    probability 1 transiently (ratios of prefix products are clamped by
    callers when needed). *)

val div_exceeding_one : t -> t -> float
(** Like {!div} but returns the raw log, allowed to be positive. Used by
    correlation corrections where an intermediate ratio is not itself a
    probability. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val max : t -> t -> t
val min : t -> t -> t

val is_zero : t -> bool

val approx_equal : ?eps:float -> t -> t -> bool
(** Equality of the underlying probabilities up to additive [eps]
    (default [1e-9]) in probability space. *)

val sub_prob : t -> float -> t
(** [sub_prob t eps] is the probability [max 0 (to_prob t - eps)] as a
    log-prob. Used for the approximate index' additive-error threshold. *)

val pp : Format.formatter -> t -> unit
(** Prints the probability (not the log) with 6 significant digits. *)

val to_string : t -> string
