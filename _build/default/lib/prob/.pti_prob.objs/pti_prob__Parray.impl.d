lib/prob/parray.ml: Array Float Logp Printf
