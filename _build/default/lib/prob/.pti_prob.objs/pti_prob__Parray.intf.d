lib/prob/parray.mli: Logp
