lib/prob/logp.mli: Format
