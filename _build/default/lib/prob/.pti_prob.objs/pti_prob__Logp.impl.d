lib/prob/logp.ml: Float Format Printf
