(** Space accounting helpers for the Fig 9(c) experiment.

    All structures report their footprint in machine words via their
    [size_words] functions; this module converts and pretty-prints. *)

val bytes_of_words : int -> int
(** 8 bytes per word (64-bit). *)

val mb_of_words : int -> float
val pp_words : Format.formatter -> int -> unit
(** Human-readable, e.g. "12.4 MB". *)

val to_string : int -> string
