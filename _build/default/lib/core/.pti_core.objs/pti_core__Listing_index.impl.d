lib/core/listing_index.ml: Array Engine Fun List Marshal Printf Pti_prob Pti_rmq Pti_transform Pti_ustring Stdlib
