lib/core/simple_index.ml: Array Float Hashtbl List Pti_prob Pti_suffix Pti_transform Pti_ustring
