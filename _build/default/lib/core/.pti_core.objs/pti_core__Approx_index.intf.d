lib/core/approx_index.mli: Pti_prob Pti_rmq Pti_transform Pti_ustring
