lib/core/link_stab.ml: Array Float Hashtbl List Pti_prob Pti_rmq Stdlib
