lib/core/general_index.ml: Engine Fun Pti_prob Pti_transform Pti_ustring
