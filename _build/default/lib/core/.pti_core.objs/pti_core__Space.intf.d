lib/core/space.mli: Format
