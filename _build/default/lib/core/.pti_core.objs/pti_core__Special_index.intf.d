lib/core/special_index.mli: Engine Pti_prob Pti_ustring Seq
