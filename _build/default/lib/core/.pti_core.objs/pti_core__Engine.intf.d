lib/core/engine.mli: Pti_prob Pti_rmq Pti_transform Pti_ustring Seq
