lib/core/simple_index.mli: Pti_prob Pti_ustring
