lib/core/approx_hsv.ml: Array Hashtbl Link_stab List Printf Pti_prob Pti_rmq Pti_suffix Pti_transform Pti_ustring Stdlib
