lib/core/approx_hsv.mli: Pti_prob Pti_rmq Pti_transform Pti_ustring
