lib/core/engine.ml: Array Bytes Char Float Hashtbl List Marshal Printf Pti_prob Pti_rmq Pti_succinct Pti_suffix Pti_transform Pti_ustring Seq Stdlib String
