lib/core/approx_index.ml: Array Link_stab List Printf Pti_prob Pti_rmq Pti_suffix Pti_transform Pti_ustring
