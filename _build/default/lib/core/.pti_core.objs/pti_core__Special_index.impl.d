lib/core/special_index.ml: Engine Pti_prob Pti_transform Pti_ustring
