lib/core/link_stab.mli: Pti_prob Pti_rmq
