lib/core/listing_index.mli: Engine Pti_prob Pti_rmq Pti_ustring Seq
