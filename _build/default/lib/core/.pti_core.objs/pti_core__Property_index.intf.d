lib/core/property_index.mli: Pti_prob Pti_rmq Pti_ustring
