lib/core/general_index.mli: Engine Pti_prob Pti_transform Pti_ustring Seq
