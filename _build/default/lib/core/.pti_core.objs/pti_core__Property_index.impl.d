lib/core/property_index.ml: Array Hashtbl List Pti_prob Pti_rmq Pti_suffix Pti_transform Pti_ustring Stdlib
