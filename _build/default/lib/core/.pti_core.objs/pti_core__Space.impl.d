lib/core/space.ml: Format
