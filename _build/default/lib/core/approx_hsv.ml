module Logp = Pti_prob.Logp
module Rmq = Pti_rmq.Rmq
module Sais = Pti_suffix.Sais
module Lcp = Pti_suffix.Lcp
module St = Pti_suffix.Suffix_tree
module Lca = Pti_suffix.Lca
module Sa_search = Pti_suffix.Sa_search
module Transform = Pti_transform.Transform
module Sym = Pti_ustring.Sym

type t = {
  tr : Transform.t;
  epsilon : float;
  text : int array;
  sa : int array;
  links : Link_stab.t;
  n_marks : int;
}

let prefix_prob tr a len =
  Logp.to_prob (Transform.window_logp_corrected tr ~pos:a ~len)

(* One mark: node [v] carries position id [d]; [rep] is the text
   position of a witness suffix for [d] under [v] (used to evaluate the
   probability profile) and [flen] the deepest valid depth any d-leaf
   under [v] reaches. *)
type mark = {
  v : int;
  lb : int;
  rb : int;
  depth : int;
  mutable rep : int;
  mutable flen : int;
  mutable target : int; (* index of the parent mark in the per-d array, -1 at top *)
}

let build_marks tr ~st ~sa ~pos ~lca =
  let n = Array.length sa in
  let flen = Transform.factor_suffix_lengths tr in
  (* leaves per position id, in suffix-array order *)
  let by_d : (int, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  for j = n - 1 downto 0 do
    let a = sa.(j) in
    let d = pos.(a) in
    if d >= 0 then begin
      match Hashtbl.find_opt by_d d with
      | Some l -> l := j :: !l
      | None -> Hashtbl.add by_d d (ref [ j ])
    end
  done;
  let all_marks = ref [] in
  let n_marks = ref 0 in
  Hashtbl.iter
    (fun d leaves ->
      let leaves = !leaves in
      (* distinct marked nodes for d: the leaves plus LCAs of
         consecutive leaves *)
      let marked : (int, mark) Hashtbl.t = Hashtbl.create 8 in
      let add v rep_leaf =
        let a = sa.(rep_leaf) in
        let lb, rb = St.interval st v in
        match Hashtbl.find_opt marked v with
        | Some m ->
            if flen.(a) > m.flen then begin
              m.flen <- flen.(a);
              m.rep <- a
            end
        | None ->
            Hashtbl.replace marked v
              {
                v;
                lb;
                rb;
                depth = St.str_depth st v;
                rep = a;
                flen = flen.(a);
                target = -1;
              }
      in
      List.iter (fun j -> add j j) leaves;
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            add (Lca.query lca a b) a;
            pairs rest
        | _ -> ()
      in
      pairs leaves;
      (* order marks so that ancestors precede descendants, then find
         each mark's lowest proper marked ancestor with a stack *)
      let marks =
        Hashtbl.fold (fun _ m acc -> m :: acc) marked []
        |> List.sort (fun a b ->
               if a.lb <> b.lb then compare a.lb b.lb
               else if a.rb <> b.rb then compare b.rb a.rb
               else compare a.depth b.depth)
        |> Array.of_list
      in
      let stack = ref [] in
      Array.iteri
        (fun i m ->
          let rec unwind = function
            | top :: rest ->
                let tm = marks.(top) in
                if tm.lb <= m.lb && m.rb <= tm.rb && top <> i then
                  top :: rest
                else unwind rest
            | [] -> []
          in
          stack := unwind !stack;
          (match !stack with top :: _ -> m.target <- top | [] -> ());
          stack := i :: !stack)
        marks;
      (* propagate the deepest witness bottom-up (children appear after
         their parents in [marks], so iterate in reverse) *)
      for i = Array.length marks - 1 downto 0 do
        let m = marks.(i) in
        if m.target >= 0 then begin
          let p = marks.(m.target) in
          if m.flen > p.flen then begin
            p.flen <- m.flen;
            p.rep <- m.rep
          end
        end
      done;
      n_marks := !n_marks + Array.length marks;
      all_marks := (d, marks) :: !all_marks)
    by_d;
  (!all_marks, !n_marks)

let build_links tr ~epsilon marks_by_d =
  let tau_min = Transform.tau_min tr in
  let floor = tau_min -. epsilon in
  let links = ref [] in
  List.iter
    (fun (d, marks) ->
      Array.iter
        (fun m ->
          let t_depth = if m.target >= 0 then marks.(m.target).depth else 0 in
          let o_depth = Stdlib.min m.depth m.flen in
          if o_depth > t_depth then begin
            let a = m.rep in
            Link_stab.epsilon_partition ~epsilon ~floor
              ~prob:(fun k -> prefix_prob tr a k)
              ~lo_depth:t_depth ~hi_depth:o_depth
              (fun td od value ->
                links :=
                  {
                    Link_stab.lo = m.lb;
                    hi = m.rb;
                    t_depth = td;
                    o_depth = od;
                    posid = d;
                    value;
                  }
                  :: !links)
          end)
        marks)
    marks_by_d;
  !links

let of_transform ?(rmq_kind = Rmq.Sparse) ~epsilon tr =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Approx_hsv: epsilon must be in (0, 1)";
  let text = Transform.text tr in
  let pos = Transform.pos tr in
  let n = Array.length text in
  let sa = Sais.suffix_array text in
  let lcp = Lcp.kasai ~text ~sa in
  let st = St.build ~sa ~lcp ~text_len:n in
  let parent = Array.init (St.n_nodes st) (fun v -> St.parent st v) in
  let lca = Lca.build ~parent ~root:(St.root st) in
  let marks_by_d, n_marks = build_marks tr ~st ~sa ~pos ~lca in
  let links = Link_stab.build ~rmq_kind (build_links tr ~epsilon marks_by_d) in
  { tr; epsilon; text; sa; links; n_marks }

let build ?rmq_kind ?max_text_len ~epsilon ~tau_min u =
  let tr = Transform.build ?max_text_len ~tau_min u in
  of_transform ?rmq_kind ~epsilon tr

let validate_pattern pattern =
  if Array.length pattern = 0 then invalid_arg "Approx_hsv.query: empty pattern";
  Array.iter
    (fun s ->
      if s = Sym.separator then
        invalid_arg "Approx_hsv.query: pattern contains the separator")
    pattern

let query t ~pattern ~tau =
  validate_pattern pattern;
  if tau < Transform.tau_min t.tr -. 1e-12 then
    invalid_arg "Approx_hsv.query: tau below construction tau_min";
  match Sa_search.range ~text:t.text ~sa:t.sa ~pattern with
  | None -> []
  | Some (l, r) -> Link_stab.stab t.links ~l ~r ~m:(Array.length pattern) ~tau

let query_string t ~pattern ~tau = query t ~pattern:(Sym.of_string pattern) ~tau
let count t ~pattern ~tau = List.length (query t ~pattern ~tau)
let epsilon t = t.epsilon
let n_links t = Link_stab.n_links t.links
let n_marks t = t.n_marks

let size_words t =
  Array.length t.sa + Link_stab.size_words t.links + Transform.size_words t.tr

let stats t =
  Printf.sprintf "approx_hsv: N=%d marks=%d links=%d epsilon=%g size=%d words"
    (Array.length t.text) t.n_marks (n_links t) t.epsilon (size_words t)
