(** The "simple index" baseline (§4.1): suffix array plus probability
    array, scanning {e every} suffix in the pattern's range and checking
    its probability — no RMQ structures, so query time is proportional
    to the full range size rather than the output size. Kept as the
    comparison point for the efficient index (ablation benchmark). *)

module Logp = Pti_prob.Logp

type t

val build_special : Pti_ustring.Ustring.t -> t
(** §4.1 as written: a special uncertain string, no transformation,
    arbitrary τ. *)

val build : ?max_text_len:int -> tau_min:float -> Pti_ustring.Ustring.t -> t
(** General strings via the §5 transformation (with per-query duplicate
    elimination). *)

val query :
  t -> pattern:Pti_ustring.Sym.t array -> tau:float -> (int * Logp.t) list
(** Distinct original positions with probability strictly above [tau],
    most probable first. *)

val query_string : t -> pattern:string -> tau:float -> (int * Logp.t) list
val count : t -> pattern:Pti_ustring.Sym.t array -> tau:float -> int
val range_size : t -> pattern:Pti_ustring.Sym.t array -> int
(** Number of suffixes the scan visits for this pattern (the quantity
    the RMQ index avoids). *)

val size_words : t -> int
