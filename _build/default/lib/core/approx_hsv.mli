(** The approximate index exactly as §7 describes it: the
    Hon–Shah–Vitter link framework over a real suffix tree.

    Leaves of the suffix tree of the transformed text are marked with
    their original position id; an internal node is marked with id [d]
    when it is the LCA of two leaves marked [d] (computed, per id, from
    consecutive marked leaves in suffix-array order). Every marked node
    links to its lowest properly-marked ancestor, and links are ε-refined
    along the path so consecutive probability drops stay within ε. The
    marking collapses the per-suffix link chains of {!Approx_index} onto
    shared tree paths, trading the suffix-tree + LCA construction cost
    for fewer links.

    Same query guarantee as {!Approx_index}: every match with
    probability > τ is reported; everything reported has probability
    > τ − ε; both indexes agree on which positions they report (the
    test suite checks this). *)

module Logp = Pti_prob.Logp

type t

val build :
  ?rmq_kind:Pti_rmq.Rmq.kind ->
  ?max_text_len:int ->
  epsilon:float ->
  tau_min:float ->
  Pti_ustring.Ustring.t ->
  t

val of_transform :
  ?rmq_kind:Pti_rmq.Rmq.kind ->
  epsilon:float ->
  Pti_transform.Transform.t ->
  t

val query :
  t -> pattern:Pti_ustring.Sym.t array -> tau:float -> (int * Logp.t) list

val query_string : t -> pattern:string -> tau:float -> (int * Logp.t) list
val count : t -> pattern:Pti_ustring.Sym.t array -> tau:float -> int
val epsilon : t -> float
val n_links : t -> int
val n_marks : t -> int
(** Number of distinct (node, position-id) marks. *)

val size_words : t -> int
val stats : t -> string
