let bytes_of_words w = 8 * w

let mb_of_words w = float_of_int (bytes_of_words w) /. (1024.0 *. 1024.0)

let pp_words ppf w =
  let b = bytes_of_words w in
  if b < 1024 then Format.fprintf ppf "%d B" b
  else if b < 1024 * 1024 then Format.fprintf ppf "%.1f KB" (float_of_int b /. 1024.0)
  else Format.fprintf ppf "%.1f MB" (mb_of_words w)

let to_string w = Format.asprintf "%a" pp_words w
