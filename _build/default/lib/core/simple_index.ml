module Logp = Pti_prob.Logp
module Ustring = Pti_ustring.Ustring
module Sym = Pti_ustring.Sym
module Transform = Pti_transform.Transform
module Sais = Pti_suffix.Sais
module Sa_search = Pti_suffix.Sa_search

type t = {
  tr : Transform.t;
  text : int array;
  pos : int array;
  sa : int array;
  n : int;
}

let of_transform tr =
  let text = Transform.text tr in
  { tr; text; pos = Transform.pos tr; sa = Sais.suffix_array text; n = Array.length text }

let build_special u =
  if Ustring.length u = 0 then invalid_arg "Simple_index.build_special: empty";
  of_transform (Transform.identity u)

let build ?max_text_len ~tau_min u =
  if Ustring.length u = 0 then invalid_arg "Simple_index.build: empty";
  of_transform (Transform.build ?max_text_len ~tau_min u)

let validate_pattern pattern =
  if Array.length pattern = 0 then invalid_arg "Simple_index.query: empty pattern";
  Array.iter
    (fun s ->
      if s = Sym.separator then
        invalid_arg "Simple_index.query: pattern contains the separator")
    pattern

let query t ~pattern ~tau =
  validate_pattern pattern;
  if tau < Transform.tau_min t.tr -. 1e-12 then
    invalid_arg "Simple_index.query: tau below construction tau_min";
  match Sa_search.range ~text:t.text ~sa:t.sa ~pattern with
  | None -> []
  | Some (l, r) ->
      let m = Array.length pattern in
      let ltau = Logp.to_log (Logp.of_prob tau) in
      let best = Hashtbl.create 64 in
      for j = l to r do
        let a = t.sa.(j) in
        if a + m <= t.n && t.pos.(a) >= 0 && t.pos.(a + m - 1) = t.pos.(a) + m - 1
        then begin
          let v = Logp.to_log (Transform.window_logp_corrected t.tr ~pos:a ~len:m) in
          if v > ltau then begin
            let key = t.pos.(a) in
            match Hashtbl.find_opt best key with
            | Some bv when bv >= v -> ()
            | _ -> Hashtbl.replace best key v
          end
        end
      done;
      Hashtbl.fold
        (fun key v acc -> (key, Logp.of_log (Float.min 0.0 v)) :: acc)
        best []
      |> List.sort (fun (_, a) (_, b) -> Logp.compare b a)

let query_string t ~pattern ~tau = query t ~pattern:(Sym.of_string pattern) ~tau
let count t ~pattern ~tau = List.length (query t ~pattern ~tau)

let range_size t ~pattern =
  match Sa_search.range ~text:t.text ~sa:t.sa ~pattern with
  | None -> 0
  | Some (l, r) -> r - l + 1

let size_words t = Array.length t.sa + Transform.size_words t.tr
