(** Link stabbing structure shared by the approximate indexes (§7).

    A {e link} asserts: "for pattern lengths [m] in
    [(t_depth, o_depth]], the pattern occurring at the suffixes of the
    (suffix-array) interval [\[lo, hi\]] matches at original position
    [posid] with probability at most [value] (and at least
    [value − ε])". A query with locus interval [\[l, r\]] and length [m]
    retrieves every link with [lo ∈ \[l, r\]], [hi ≤ r],
    [t_depth < m ≤ o_depth] and [value] above the threshold.

    Implementation: a segment tree over the depth axis — a link is
    stored at the O(log D) canonical nodes of its depth interval; each
    node keeps its links sorted by [lo] with a range-maximum structure
    over [value] for output-sensitive max-reporting. *)

type link = {
  lo : int; (** leftmost suffix-array position of the origin *)
  hi : int; (** rightmost; [lo = hi] for leaf origins *)
  t_depth : int; (** target depth (exclusive) *)
  o_depth : int; (** origin depth (inclusive) *)
  posid : int; (** original string position reported *)
  value : float; (** probability (not log) at depth [t_depth + 1] *)
}

val epsilon_partition :
  epsilon:float ->
  floor:float ->
  prob:(int -> float) ->
  lo_depth:int ->
  hi_depth:int ->
  (int -> int -> float -> unit) ->
  unit
(** [epsilon_partition ~epsilon ~floor ~prob ~lo_depth ~hi_depth emit]
    greedily cuts the non-increasing probability profile
    [prob (lo_depth+1) .. prob hi_depth] into segments whose probability
    drop is at most [epsilon], calling [emit t_depth o_depth value] for
    each (the §7 link refinement). Segments whose upper [value] cannot
    exceed [floor] are pruned — pass [tau_min − epsilon] to drop links
    no legal query can report. *)

type t

val build : ?rmq_kind:Pti_rmq.Rmq.kind -> link list -> t
val n_links : t -> int
val depth_size : t -> int

val stab :
  t -> l:int -> r:int -> m:int -> tau:float -> (int * Pti_prob.Logp.t) list
(** Stabbed links with [value > tau], deduplicated by [posid] keeping
    the maximum value, most probable first. *)

val size_words : t -> int
