module Logp = Pti_prob.Logp
module Rmq = Pti_rmq.Rmq
module Sais = Pti_suffix.Sais
module Sa_search = Pti_suffix.Sa_search
module Transform = Pti_transform.Transform
module Sym = Pti_ustring.Sym

type t = {
  tr : Transform.t;
  epsilon : float;
  text : int array;
  sa : int array;
  n : int;
  links : Link_stab.t;
}

(* Exact probability (correlation-corrected) of the length-[len] prefix
   of the suffix at text position [a]. *)
let prefix_prob tr a len =
  Logp.to_prob (Transform.window_logp_corrected tr ~pos:a ~len)

let build_links tr ~epsilon ~pos ~sa n =
  let tau_min = Transform.tau_min tr in
  let flen = Transform.factor_suffix_lengths tr in
  let floor = tau_min -. epsilon in
  let links = ref [] in
  for j = 0 to n - 1 do
    let a = sa.(j) in
    if a < n && pos.(a) >= 0 then begin
      let d = pos.(a) in
      Link_stab.epsilon_partition ~epsilon ~floor
        ~prob:(fun k -> prefix_prob tr a k)
        ~lo_depth:0 ~hi_depth:flen.(a)
        (fun t_depth o_depth value ->
          links :=
            { Link_stab.lo = j; hi = j; t_depth; o_depth; posid = d; value }
            :: !links)
    end
  done;
  !links

let of_transform ?(rmq_kind = Rmq.Sparse) ~epsilon tr =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Approx_index: epsilon must be in (0, 1)";
  let text = Transform.text tr in
  let pos = Transform.pos tr in
  let n = Array.length text in
  let sa = Sais.suffix_array text in
  let links = Link_stab.build ~rmq_kind (build_links tr ~epsilon ~pos ~sa n) in
  { tr; epsilon; text; sa; n; links }

let build ?rmq_kind ?max_text_len ~epsilon ~tau_min u =
  let tr = Transform.build ?max_text_len ~tau_min u in
  of_transform ?rmq_kind ~epsilon tr

let validate_pattern pattern =
  if Array.length pattern = 0 then invalid_arg "Approx_index.query: empty pattern";
  Array.iter
    (fun s ->
      if s = Sym.separator then
        invalid_arg "Approx_index.query: pattern contains the separator")
    pattern

let query t ~pattern ~tau =
  validate_pattern pattern;
  if tau < Transform.tau_min t.tr -. 1e-12 then
    invalid_arg "Approx_index.query: tau below construction tau_min";
  match Sa_search.range ~text:t.text ~sa:t.sa ~pattern with
  | None -> []
  | Some (l, r) -> Link_stab.stab t.links ~l ~r ~m:(Array.length pattern) ~tau

let query_string t ~pattern ~tau = query t ~pattern:(Sym.of_string pattern) ~tau
let count t ~pattern ~tau = List.length (query t ~pattern ~tau)
let epsilon t = t.epsilon
let tau_min t = Transform.tau_min t.tr
let n_links t = Link_stab.n_links t.links

let size_words t =
  Array.length t.sa + Link_stab.size_words t.links + Transform.size_words t.tr

let stats t =
  Printf.sprintf "approx: N=%d links=%d epsilon=%g depth_size=%d size=%d words"
    t.n (n_links t) t.epsilon
    (Link_stab.depth_size t.links)
    (size_words t)
