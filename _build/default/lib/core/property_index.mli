(** Fixed-threshold property-matching baseline (Amir et al., §5.1).

    The paper contrasts its arbitrary-τ index with the prior approach:
    transform the uncertain string for one fixed threshold [τ_c] and
    index the result with a {e property suffix tree} — matches are the
    suffixes whose valid prefix (the "property") is long enough. This
    module implements that baseline: a per-suffix maximal-valid-length
    array π (π(j) = longest prefix of the j-th suffix whose probability
    strictly exceeds [τ_c]) with a range-maximum structure over it, so a
    query reports, output-sensitively, the suffixes in the pattern range
    with π ≥ m.

    Only queries at exactly [τ = τ_c] are supported — the limitation
    §5.1 motivates the main index with ("substring searching in this
    method works only on a fixed probability threshold"). In exchange,
    queries skip the probability machinery entirely (one integer
    comparison per report) and the index stores no per-length
    structures. *)

module Logp = Pti_prob.Logp

type t

val build :
  ?rmq_kind:Pti_rmq.Rmq.kind ->
  ?max_text_len:int ->
  tau_c:float ->
  Pti_ustring.Ustring.t ->
  t

val tau_c : t -> float

val query : t -> pattern:Pti_ustring.Sym.t array -> (int * Logp.t) list
(** Distinct original positions where the pattern matches with
    probability strictly above [tau_c], with their exact probabilities,
    in no particular order guarantee beyond distinctness. *)

val query_string : t -> pattern:string -> (int * Logp.t) list
val count : t -> pattern:Pti_ustring.Sym.t array -> int
val size_words : t -> int
