module Logp = Pti_prob.Logp
module Rmq = Pti_rmq.Rmq
module Sais = Pti_suffix.Sais
module Sa_search = Pti_suffix.Sa_search
module Transform = Pti_transform.Transform
module Sym = Pti_ustring.Sym

type t = {
  tr : Transform.t;
  text : int array;
  pos : int array;
  sa : int array;
  pi : int array; (* per suffix-array slot: maximal valid prefix length *)
  rmq : Rmq.t; (* maximum of pi over suffix ranges *)
}

(* π by text position: the longest window starting at [a] (within its
   factor) whose corrected probability strictly exceeds τ_c.

   Without correlation rules the probability is non-increasing in the
   window length, so an extend-while-valid walk suffices and π shrinks
   by at most 1 as the start advances within a factor (two-pointer).
   Correlation corrections can make the profile non-monotone (a source
   entering the window can replace a mixture with a larger conditional),
   so in that case π is the maximum over a full scan of the factor
   suffix — and intermediate lengths below π may still be invalid, which
   the query re-verifies per report. *)
let pi_by_position tr ~tau_c ~pos n =
  let flen = Transform.factor_suffix_lengths tr in
  let ltau = Logp.of_prob tau_c in
  let correlated =
    not
      (Pti_ustring.Correlation.is_empty
         (Pti_ustring.Ustring.correlations (Transform.source tr)))
  in
  let pi = Array.make n 0 in
  for a = 0 to n - 1 do
    if pos.(a) >= 0 then begin
      if correlated then begin
        let best = ref 0 in
        for len = 1 to flen.(a) do
          if Logp.(Transform.window_logp_corrected tr ~pos:a ~len > ltau) then
            best := len
        done;
        pi.(a) <- !best
      end
      else begin
        let start =
          if a > 0 && pos.(a) = pos.(a - 1) + 1 then
            Stdlib.max 0 (pi.(a - 1) - 1)
          else 0
        in
        let len = ref start in
        while
          !len < flen.(a)
          && Logp.(
               Transform.window_logp_corrected tr ~pos:a ~len:(!len + 1) > ltau)
        do
          incr len
        done;
        pi.(a) <- !len
      end
    end
  done;
  pi

let build ?(rmq_kind = Rmq.Succinct) ?max_text_len ~tau_c u =
  if Pti_ustring.Ustring.length u = 0 then
    invalid_arg "Property_index.build: empty string";
  let tr = Transform.build ?max_text_len ~tau_min:tau_c u in
  let text = Transform.text tr in
  let pos = Transform.pos tr in
  let n = Array.length text in
  let sa = Sais.suffix_array text in
  let pi_pos = pi_by_position tr ~tau_c ~pos n in
  let pi = Array.init n (fun j -> pi_pos.(sa.(j))) in
  let rmq =
    Rmq.build_oracle rmq_kind ~value:(fun j -> float_of_int pi.(j)) ~len:n
  in
  { tr; text; pos; sa; pi; rmq }

let tau_c t = Transform.tau_min t.tr

let validate_pattern pattern =
  if Array.length pattern = 0 then
    invalid_arg "Property_index.query: empty pattern";
  Array.iter
    (fun s ->
      if s = Sym.separator then
        invalid_arg "Property_index.query: pattern contains the separator")
    pattern

let query t ~pattern =
  validate_pattern pattern;
  match Sa_search.range ~text:t.text ~sa:t.sa ~pattern with
  | None -> []
  | Some (l, r) ->
      let m = Array.length pattern in
      let ltau = Logp.of_prob (tau_c t) in
      let best = Hashtbl.create 32 in
      (* report slots with π >= m by iterative range-maximum extraction;
         the length-m window is re-verified per report because π only
         bounds the *maximal* valid length (exact under no correlation,
         an upper-bound filter under correlation). *)
      let rec go l r =
        if l <= r then begin
          let mx = Rmq.query t.rmq ~l ~r in
          if t.pi.(mx) >= m then begin
            let a = t.sa.(mx) in
            let d = t.pos.(a) in
            if not (Hashtbl.mem best d) then begin
              let p = Transform.window_logp_corrected t.tr ~pos:a ~len:m in
              if Logp.(p > ltau) then Hashtbl.replace best d p
            end;
            go l (mx - 1);
            go (mx + 1) r
          end
        end
      in
      go l r;
      Hashtbl.fold (fun d p acc -> (d, p) :: acc) best []
      |> List.sort (fun (_, a) (_, b) -> Logp.compare b a)

let query_string t ~pattern = query t ~pattern:(Sym.of_string pattern)
let count t ~pattern = List.length (query t ~pattern)

let size_words t =
  (2 * Array.length t.sa) + Rmq.size_words t.rmq + Transform.size_words t.tr
