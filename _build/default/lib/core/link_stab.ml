module Logp = Pti_prob.Logp
module Rmq = Pti_rmq.Rmq

type link = {
  lo : int;
  hi : int;
  t_depth : int;
  o_depth : int;
  posid : int;
  value : float;
}

let epsilon_partition ~epsilon ~floor ~prob ~lo_depth ~hi_depth emit =
  let t_depth = ref lo_depth in
  let upper = ref 1.0 in
  let k = ref (lo_depth + 1) in
  let stop = ref false in
  while (not !stop) && !k <= hi_depth do
    let p = prob !k in
    if !k = !t_depth + 1 then upper := p
    else if !upper -. p > epsilon then begin
      emit !t_depth (!k - 1) !upper;
      t_depth := !k - 1;
      upper := p
    end;
    if !upper <= floor then stop := true else incr k
  done;
  if (not !stop) && !k > !t_depth + 1 then emit !t_depth hi_depth !upper
  else if !stop && !k > !t_depth + 1 && !upper > floor then
    emit !t_depth (!k - 1) !upper

type node = {
  lks : link array; (* sorted by lo *)
  rmq : Rmq.t; (* over values *)
}

type t = {
  depth_size : int;
  nodes : node option array; (* 1-based segment tree over [1, depth_size] *)
  n_links : int;
}

let build ?(rmq_kind = Rmq.Sparse) links =
  let max_depth =
    List.fold_left (fun acc l -> Stdlib.max acc l.o_depth) 1 links
  in
  let depth_size =
    let rec go v = if v >= max_depth then v else go (2 * v) in
    go 1
  in
  let buckets = Array.make (2 * depth_size) [] in
  (* canonical decomposition of the depth interval [t_depth+1, o_depth] *)
  let rec assign node lo hi l r link =
    if r < lo || hi < l then ()
    else if l <= lo && hi <= r then buckets.(node) <- link :: buckets.(node)
    else begin
      let mid = (lo + hi) / 2 in
      assign (2 * node) lo mid l r link;
      assign ((2 * node) + 1) (mid + 1) hi l r link
    end
  in
  let n_links = ref 0 in
  List.iter
    (fun link ->
      incr n_links;
      assign 1 1 depth_size (link.t_depth + 1) link.o_depth link)
    links;
  let nodes =
    Array.map
      (fun bucket ->
        match bucket with
        | [] -> None
        | _ ->
            let lks = Array.of_list bucket in
            Array.sort (fun a b -> compare (a.lo, a.hi) (b.lo, b.hi)) lks;
            let rmq = Rmq.build rmq_kind (Array.map (fun l -> l.value) lks) in
            Some { lks; rmq })
      buckets
  in
  { depth_size; nodes; n_links = !n_links }

let n_links t = t.n_links
let depth_size t = t.depth_size

(* first index with lo >= x *)
let lower_bound lks x =
  let l = ref 0 and r = ref (Array.length lks) in
  while !l < !r do
    let mid = (!l + !r) / 2 in
    if lks.(mid).lo < x then l := mid + 1 else r := mid
  done;
  !l

let stab t ~l ~r ~m ~tau =
  if m > t.depth_size then []
  else begin
    let best = Hashtbl.create 32 in
    let report node =
      match node with
      | None -> ()
      | Some { lks; rmq } ->
          let lo = lower_bound lks l and hi = lower_bound lks (r + 1) - 1 in
          (* Max-report links with value > tau. A link whose [hi] leaks
             past [r] (an ancestor interval sharing [lo]) is skipped but
             does not stop the recursion — there are at most
             tree-height such links per query. *)
          let rec go lo hi =
            if lo <= hi then begin
              let mx = Rmq.query rmq ~l:lo ~r:hi in
              let lk = lks.(mx) in
              if lk.value > tau then begin
                if lk.hi <= r then begin
                  match Hashtbl.find_opt best lk.posid with
                  | Some bv when bv >= lk.value -> ()
                  | _ -> Hashtbl.replace best lk.posid lk.value
                end;
                go lo (mx - 1);
                go (mx + 1) hi
              end
            end
          in
          go lo hi
    in
    (* visit the root-to-leaf path for depth point m *)
    let node = ref 1 and lo = ref 1 and hi = ref t.depth_size in
    while !lo < !hi do
      report t.nodes.(!node);
      let mid = (!lo + !hi) / 2 in
      if m <= mid then begin
        node := 2 * !node;
        hi := mid
      end
      else begin
        node := (2 * !node) + 1;
        lo := mid + 1
      end
    done;
    report t.nodes.(!node);
    Hashtbl.fold
      (fun d v acc -> (d, Logp.of_prob (Float.min 1.0 v)) :: acc)
      best []
    |> List.sort (fun (_, a) (_, b) -> Logp.compare b a)
  end

let size_words t =
  Array.fold_left
    (fun acc node ->
      match node with
      | None -> acc + 1
      | Some { lks; rmq } -> acc + (4 * Array.length lks) + Rmq.size_words rmq)
    4 t.nodes
