(** Approximate substring searching (§7).

    Answers substring queries for arbitrary τ ≥ τ_min with an additive
    error ε fixed at construction: every position whose true matching
    probability strictly exceeds τ is reported, and every reported
    position has true probability > τ − ε. The probability attached to
    each answer is the stored link value — an upper bound on (and within
    ε of) the true probability.

    Construction follows the link framework of Hon–Shah–Vitter as used
    by the paper: along each suffix of the transformed text, matching
    probability is non-increasing in depth; the root-to-leaf path is cut
    into links whose probability drop is at most ε, so O(1/ε) links per
    suffix suffice (links whose value cannot reach τ_min are pruned).
    A query with pattern length m needs the links stabbed at depth m by
    the pattern's suffix range; we store links in a segment tree over
    the depth axis (each node holding its links sorted by suffix-array
    position with a range-maximum structure over probabilities), giving
    O((log + occ)·log) reporting for any pattern length — the
    theoretically-near-optimal behaviour §7 is after, without the
    short/long pattern split of the exact index. *)

module Logp = Pti_prob.Logp

type t

val build :
  ?rmq_kind:Pti_rmq.Rmq.kind ->
  ?max_text_len:int ->
  epsilon:float ->
  tau_min:float ->
  Pti_ustring.Ustring.t ->
  t
(** [epsilon] must be in (0, 1). *)

val of_transform :
  ?rmq_kind:Pti_rmq.Rmq.kind ->
  epsilon:float ->
  Pti_transform.Transform.t ->
  t
(** Builds over an existing transformation (shares it with an exact
    index). *)

val query :
  t -> pattern:Pti_ustring.Sym.t array -> tau:float -> (int * Logp.t) list
(** Distinct original positions, highest stored link value first. *)

val query_string : t -> pattern:string -> tau:float -> (int * Logp.t) list
val count : t -> pattern:Pti_ustring.Sym.t array -> tau:float -> int
val epsilon : t -> float
val tau_min : t -> float
val n_links : t -> int
val size_words : t -> int
val stats : t -> string
