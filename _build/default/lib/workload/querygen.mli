(** Query workloads.

    The evaluation queries substrings that plausibly occur: each pattern
    is drawn by picking a random starting position and following the
    marginal distribution through [m] positions (so likely worlds yield
    likely patterns). *)

val pattern : Random.State.t -> Pti_ustring.Ustring.t -> m:int -> Pti_ustring.Sym.t array
(** Raises [Invalid_argument] if [m] exceeds the string length or
    [m < 1]. *)

val patterns :
  Random.State.t -> Pti_ustring.Ustring.t -> m:int -> count:int ->
  Pti_ustring.Sym.t array list

val pattern_batch :
  Random.State.t -> Pti_ustring.Ustring.t -> lengths:int list -> per_length:int ->
  (int * Pti_ustring.Sym.t array list) list
(** For each requested length, [per_length] patterns (lengths exceeding
    the string are dropped). *)
