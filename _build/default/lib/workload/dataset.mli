(** The synthetic dataset of §8.1.

    Pipeline: a protein-like base sequence over |Σ| = 22 is broken into
    strings with normally distributed lengths in [20, 45]; for each
    string [s] an edit-distance-4 neighbourhood [A(s)] is sampled; a
    fraction θ of positions become uncertain, their pdf given by the
    normalized letter frequencies of the corresponding column of
    [A(s)], truncated to at most 5 choices. The remaining positions stay
    deterministic. *)

type params = {
  total : int; (** total number of positions, the paper's n *)
  theta : float; (** fraction of uncertain positions, 0.1 .. 0.5 *)
  max_choices : int; (** choices per uncertain position (paper: 5) *)
  edit_distance : int; (** neighbourhood radius (paper: 4) *)
  neighborhood_size : int; (** sampled neighbours per string *)
  min_len : int; (** 20 *)
  max_len : int; (** 45 *)
  seed : int;
}

val default : total:int -> theta:float -> params
(** max_choices 5, edit distance 4, neighbourhood 12, lengths [20,45],
    seed 42. *)

val collection : params -> Pti_ustring.Ustring.t list
(** The uncertain string collection (input of Problem 2). *)

val single : params -> Pti_ustring.Ustring.t
(** The collection concatenated into one uncertain string of [total]
    positions, no separators (input of Problem 1). *)

val add_random_correlations :
  Random.State.t -> Pti_ustring.Ustring.t -> count:int ->
  Pti_ustring.Ustring.t
(** Rebuilds the string with [count] random correlation rules whose
    conditionals are consistent with the existing marginals (for
    correlation tests and examples). Rules that cannot be placed are
    skipped, so fewer than [count] may be added. *)

val uncertainty : Pti_ustring.Ustring.t -> float
(** Fraction of positions with more than one choice (the realised θ). *)
