(** Synthetic protein-like sequence source.

    The paper's dataset (§8.1) starts from a concatenated mouse+human
    protein sequence (|Σ| = 22). That data is not shipped here, so this
    module synthesises a base sequence over the same 22-letter alphabet
    (20 amino acids plus the ambiguity codes B and Z) with realistic
    residue composition and mild local correlation (order-1 Markov blend
    between the stationary composition and a repeat bias), which is the
    only aspect of the source the evaluation depends on. See DESIGN.md
    §4, Substitutions. *)

val alphabet : string
(** The 22 residue letters. *)

val alphabet_size : int

val frequencies : float array
(** Stationary residue frequencies (sums to 1), aligned with
    {!alphabet}. *)

val generate : Random.State.t -> len:int -> string
(** A random protein-like sequence of exactly [len] residues. *)

val generate_strings :
  Random.State.t -> total:int -> min_len:int -> max_len:int -> string list
(** Breaks a generated base sequence into strings whose lengths follow
    an approximately normal distribution clipped to
    [\[min_len, max_len\]] (§8.1: "approximately a normal distribution
    in the range of \[20, 45\]"), with total length [total]. *)
