let perturb rng s ~dist =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    let edits = Random.State.int rng (dist + 1) in
    for _ = 1 to edits do
      let i = Random.State.int rng n in
      let c =
        Protein_source.alphabet.[Random.State.int rng Protein_source.alphabet_size]
      in
      Bytes.set b i c
    done;
    Bytes.to_string b
  end

let perturb_columns rng s ~columns ~rate =
  let b = Bytes.of_string s in
  Array.iter
    (fun i ->
      if i < Bytes.length b && Random.State.float rng 1.0 < rate then
        Bytes.set b i
          Protein_source.alphabet.[Random.State.int rng
                                     Protein_source.alphabet_size])
    columns;
  Bytes.to_string b

let neighborhood rng s ~size ~dist =
  s :: List.init (Stdlib.max 0 (size - 1)) (fun _ -> perturb rng s ~dist)

let column_pdf neighbors ~column ~max_choices =
  if max_choices < 1 then invalid_arg "Neighborhood.column_pdf: max_choices < 1";
  let counts = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if column < String.length s then begin
        let c = s.[column] in
        Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
      end)
    neighbors;
  let entries = Hashtbl.fold (fun c k acc -> (c, k) :: acc) counts [] in
  let entries =
    List.sort (fun (c1, k1) (c2, k2) -> if k1 <> k2 then compare k2 k1 else compare c1 c2) entries
  in
  let entries =
    List.filteri (fun i _ -> i < max_choices) entries
  in
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 entries in
  List.map (fun (c, k) -> (c, float_of_int k /. float_of_int total)) entries
