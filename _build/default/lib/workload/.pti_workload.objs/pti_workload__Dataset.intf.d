lib/workload/dataset.mli: Pti_ustring Random
