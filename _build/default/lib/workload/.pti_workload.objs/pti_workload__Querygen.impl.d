lib/workload/querygen.ml: Array List Printf Pti_ustring Random
