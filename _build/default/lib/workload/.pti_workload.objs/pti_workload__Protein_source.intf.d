lib/workload/protein_source.mli: Random
