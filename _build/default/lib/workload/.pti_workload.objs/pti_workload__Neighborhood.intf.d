lib/workload/neighborhood.mli: Random
