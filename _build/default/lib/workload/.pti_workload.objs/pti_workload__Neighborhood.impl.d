lib/workload/neighborhood.ml: Array Bytes Hashtbl List Option Protein_source Random Stdlib String
