lib/workload/querygen.mli: Pti_ustring Random
