lib/workload/dataset.ml: Array Float Hashtbl List Neighborhood Protein_source Pti_ustring Random Stdlib String
