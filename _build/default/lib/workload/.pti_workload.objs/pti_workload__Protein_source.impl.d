lib/workload/protein_source.ml: Array Bytes List Random Stdlib String
