let alphabet = "ARNDCQEGHILKMFPSTWYVBZ"
let alphabet_size = String.length alphabet

(* UniProt-style residue composition (percent), B/Z tiny. *)
let raw_frequencies =
  [|
    8.25; 5.53; 4.06; 5.45; 1.37; 3.93; 6.75; 7.07; 2.27; 5.96; 9.66; 5.84;
    2.42; 3.86; 4.70; 6.56; 5.34; 1.08; 2.92; 6.87; 0.04; 0.04;
  |]

let frequencies =
  let total = Array.fold_left ( +. ) 0.0 raw_frequencies in
  Array.map (fun f -> f /. total) raw_frequencies

let cumulative =
  let c = Array.make alphabet_size 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i f ->
      acc := !acc +. f;
      c.(i) <- !acc)
    frequencies;
  c

let draw rng =
  let x = Random.State.float rng 1.0 in
  let rec go i =
    if i >= alphabet_size - 1 || cumulative.(i) >= x then i else go (i + 1)
  in
  alphabet.[go 0]

(* Mild local correlation: with probability [repeat_bias] the next
   residue repeats one of the previous two — protein sequences have
   low-complexity regions, and repeated substrings are what make suffix
   structures earn their keep. *)
let repeat_bias = 0.15

let generate rng ~len =
  if len < 0 then invalid_arg "Protein_source.generate: negative length";
  let buf = Bytes.create len in
  for i = 0 to len - 1 do
    let c =
      if i >= 2 && Random.State.float rng 1.0 < repeat_bias then
        Bytes.get buf (i - 1 - Random.State.int rng 2)
      else draw rng
    in
    Bytes.set buf i c
  done;
  Bytes.to_string buf

(* Approximate normal sample via the sum of three uniforms (Irwin–Hall),
   rescaled to the clip range. *)
let normal_length rng ~min_len ~max_len =
  let u () = Random.State.float rng 1.0 in
  let z = (u () +. u () +. u ()) /. 3.0 in
  let len = min_len + int_of_float (z *. float_of_int (max_len - min_len)) in
  Stdlib.min max_len (Stdlib.max min_len len)

let generate_strings rng ~total ~min_len ~max_len =
  if min_len < 1 || max_len < min_len then
    invalid_arg "Protein_source.generate_strings: bad length range";
  let base = generate rng ~len:total in
  let rec go acc off =
    if off >= total then List.rev acc
    else begin
      let len = Stdlib.min (normal_length rng ~min_len ~max_len) (total - off) in
      go (String.sub base off len :: acc) (off + len)
    end
  in
  go [] 0
