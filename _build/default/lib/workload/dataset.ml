module Ustring = Pti_ustring.Ustring
module Sym = Pti_ustring.Sym
module Correlation = Pti_ustring.Correlation

type params = {
  total : int;
  theta : float;
  max_choices : int;
  edit_distance : int;
  neighborhood_size : int;
  min_len : int;
  max_len : int;
  seed : int;
}

let default ~total ~theta =
  {
    total;
    theta;
    max_choices = 5;
    edit_distance = 4;
    neighborhood_size = 12;
    min_len = 20;
    max_len = 45;
    seed = 42;
  }

let validate p =
  if p.total < 1 then invalid_arg "Dataset: total < 1";
  if p.theta < 0.0 || p.theta > 1.0 then invalid_arg "Dataset: theta not in [0,1]";
  if p.max_choices < 1 then invalid_arg "Dataset: max_choices < 1"

let uncertain_string_of rng p s =
  (* Choose the uncertain columns up front and make the sampled
     neighbourhood actually disagree there, so the realised uncertainty
     fraction tracks θ. *)
  let len = String.length s in
  let uncertain = Array.init len (fun _ -> Random.State.float rng 1.0 < p.theta) in
  let columns =
    Array.of_list
      (List.filter (fun i -> uncertain.(i)) (List.init len (fun i -> i)))
  in
  let neighbors =
    s
    :: List.init (Stdlib.max 1 (p.neighborhood_size - 1)) (fun _ ->
           Neighborhood.perturb_columns rng
             (Neighborhood.perturb rng s ~dist:p.edit_distance)
             ~columns ~rate:0.5)
  in
  let position i =
    if uncertain.(i) then begin
      let pdf =
        Neighborhood.column_pdf neighbors ~column:i ~max_choices:p.max_choices
      in
      Array.of_list
        (List.map (fun (c, prob) -> { Ustring.sym = Sym.of_char c; prob }) pdf)
    end
    else [| { Ustring.sym = Sym.of_char s.[i]; prob = 1.0 } |]
  in
  Ustring.make (Array.init len position)

let collection p =
  validate p;
  let rng = Random.State.make [| p.seed |] in
  let strings =
    Protein_source.generate_strings rng ~total:p.total ~min_len:p.min_len
      ~max_len:p.max_len
  in
  List.map (uncertain_string_of rng p) strings

let single p =
  let docs = collection p in
  let u, _starts = Ustring.concat ~sep:None docs in
  u

let uncertainty u =
  let n = Ustring.length u in
  if n = 0 then 0.0
  else begin
    let unc = ref 0 in
    for i = 0 to n - 1 do
      if Array.length (Ustring.choices u i) > 1 then incr unc
    done;
    float_of_int !unc /. float_of_int n
  end

(* Draw a correlation rule consistent with the existing marginals: given
   the dependent symbol's marginal m and the source symbol's probability
   q, any conditional pair with q*p+ + (1-q)*p- = m works; p+ ranges over
   [max(0, (m-(1-q))/q), min(1, m/q)]. *)
let add_random_correlations rng u ~count =
  let n = Ustring.length u in
  let existing = Correlation.rules (Ustring.correlations u) in
  let used_dep = Hashtbl.create 16 in
  let used_src = Hashtbl.create 16 in
  List.iter
    (fun (r : Correlation.rule) ->
      Hashtbl.replace used_dep r.dep_pos ();
      Hashtbl.replace used_src r.src_pos ())
    existing;
  let rules = ref existing in
  let attempts = 20 * count in
  let added = ref 0 in
  let attempt () =
    let dep_pos = Random.State.int rng n in
    let src_pos = Random.State.int rng n in
    if
      dep_pos <> src_pos
      && (not (Hashtbl.mem used_dep dep_pos))
      && (not (Hashtbl.mem used_src dep_pos))
      && not (Hashtbl.mem used_dep src_pos)
    then begin
      let deps = Ustring.choices u dep_pos in
      let srcs = Ustring.choices u src_pos in
      let dep = deps.(Random.State.int rng (Array.length deps)) in
      let src = srcs.(Random.State.int rng (Array.length srcs)) in
      let m = dep.prob and q = src.prob in
      if q > 0.0 && q < 1.0 then begin
        let lo = Float.max 0.0 ((m -. (1.0 -. q)) /. q) in
        let hi = Float.min 1.0 (m /. q) in
        if hi -. lo > 1e-9 then begin
          let p_present = lo +. Random.State.float rng (hi -. lo) in
          let p_absent = (m -. (q *. p_present)) /. (1.0 -. q) in
          let p_absent = Float.max 0.0 (Float.min 1.0 p_absent) in
          rules :=
            {
              Correlation.dep_pos;
              dep_sym = dep.sym;
              src_pos;
              src_sym = src.sym;
              p_present;
              p_absent;
            }
            :: !rules;
          Hashtbl.replace used_dep dep_pos ();
          Hashtbl.replace used_src src_pos ();
          incr added
        end
      end
    end
  in
  let tries = ref 0 in
  while !added < count && !tries < attempts do
    incr tries;
    attempt ()
  done;
  let positions = Array.init n (fun i -> Array.copy (Ustring.choices u i)) in
  Ustring.make ~correlations:!rules positions
