(** Edit-distance neighbourhoods for building per-position character
    distributions (§8.1).

    The paper, for each string [s], collects a set [A(s)] of strings
    within edit distance 4 of [s] and derives each position's pdf from
    the normalized letter frequencies at that position across [A(s)].
    We sample the neighbourhood (random substitutions — columns stay
    aligned, which is what "the i-th position of all the strings in
    A(s)" requires; the paper aligned its neighbours the same way) and
    compute the same column statistics. *)

val perturb : Random.State.t -> string -> dist:int -> string
(** A random string at substitution distance ≤ [dist] from the input
    (positions and replacement letters uniform; replacement letters come
    from {!Protein_source.alphabet}). *)

val perturb_columns :
  Random.State.t -> string -> columns:int array -> rate:float -> string
(** Additionally substitutes each listed column with probability
    [rate]. Used to concentrate neighbourhood disagreement on the
    columns chosen to become uncertain, so the realised uncertainty
    fraction matches the requested θ. *)

val neighborhood : Random.State.t -> string -> size:int -> dist:int -> string list
(** [size] sampled neighbours, always including the string itself. *)

val column_pdf :
  string list -> column:int -> max_choices:int -> (char * float) list
(** Normalized letter frequencies of [column] across the neighbourhood,
    truncated to the [max_choices] most frequent letters and
    renormalized. Frequencies sum to 1; most frequent first. *)
