lib/transform/transform.ml: Array Float List Printf Pti_prob Pti_ustring Stdlib
