lib/transform/transform.mli: Pti_prob Pti_ustring
