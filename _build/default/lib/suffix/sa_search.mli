(** Pattern search on a suffix array.

    Finds the *suffix range* of a pattern: the maximal range
    [\[sp, ep\]] of suffix-array positions whose suffixes start with the
    pattern, in O(m log n) symbol comparisons. This is the
    pattern→range step the paper performs with a suffix tree /
    compressed suffix array (§3.4); only constants differ. *)

val range :
  text:int array -> sa:int array -> pattern:int array -> (int * int) option
(** [range ~text ~sa ~pattern] is [Some (sp, ep)] (inclusive) or [None]
    if the pattern does not occur. The empty pattern matches everywhere:
    [Some (0, n-1)] (or [None] on an empty text). *)

val count : text:int array -> sa:int array -> pattern:int array -> int
