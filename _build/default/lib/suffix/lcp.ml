let rank_of_sa sa =
  let n = Array.length sa in
  let rank = Array.make n 0 in
  for i = 0 to n - 1 do
    rank.(sa.(i)) <- i
  done;
  rank

let kasai ~text ~sa =
  let n = Array.length sa in
  let rank = rank_of_sa sa in
  let lcp = Array.make (Stdlib.max n 1) 0 in
  let h = ref 0 in
  for i = 0 to n - 1 do
    if rank.(i) > 0 then begin
      let j = sa.(rank.(i) - 1) in
      while i + !h < n && j + !h < n && text.(i + !h) = text.(j + !h) do
        incr h
      done;
      lcp.(rank.(i)) <- !h;
      if !h > 0 then decr h
    end
    else h := 0
  done;
  if n = 0 then [||] else lcp
