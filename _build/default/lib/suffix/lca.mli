(** Lowest common ancestors by binary lifting.

    Works over any parent-pointer tree (here: suffix tree nodes).
    O(n log n) construction, O(log n) per query. Used when marking the
    approximate index' link structure (§7: an internal node is marked
    with position id [d] when it is the LCA of two leaves marked [d]). *)

type t

val build : parent:int array -> root:int -> t
(** [parent.(root) = -1]; every other node's parent chain must reach
    [root]. *)

val query : t -> int -> int -> int
val tree_depth : t -> int -> int

val is_ancestor : t -> anc:int -> desc:int -> bool
(** Reflexive: [is_ancestor ~anc:v ~desc:v = true]. *)
