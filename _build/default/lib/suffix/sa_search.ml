(* Compare [pattern] against the suffix starting at [pos]:
   -1 / 0 / +1 as the suffix is lexicographically smaller than / prefixed
   by / greater than the pattern. *)
let compare_suffix ~text ~pattern pos =
  let n = Array.length text and m = Array.length pattern in
  let rec go off =
    if off = m then 0
    else if pos + off >= n then -1 (* suffix ended: smaller than pattern *)
    else begin
      let c = compare text.(pos + off) pattern.(off) in
      if c <> 0 then c else go (off + 1)
    end
  in
  go 0

let range ~text ~sa ~pattern =
  let n = Array.length sa in
  if n = 0 then None
  else if Array.length pattern = 0 then Some (0, n - 1)
  else begin
    (* lo = first suffix >= pattern (i.e. not smaller), scanning for the
       first position where compare >= 0 *)
    let lo =
      let l = ref 0 and r = ref n in
      while !l < !r do
        let mid = (!l + !r) / 2 in
        if compare_suffix ~text ~pattern sa.(mid) < 0 then l := mid + 1
        else r := mid
      done;
      !l
    in
    (* hi = first suffix strictly greater than every pattern-prefixed
       suffix: first position with compare > 0 *)
    let hi =
      let l = ref lo and r = ref n in
      while !l < !r do
        let mid = (!l + !r) / 2 in
        if compare_suffix ~text ~pattern sa.(mid) <= 0 then l := mid + 1
        else r := mid
      done;
      !l
    in
    if lo >= hi then None
    else if compare_suffix ~text ~pattern sa.(lo) = 0 then Some (lo, hi - 1)
    else None
  end

let count ~text ~sa ~pattern =
  match range ~text ~sa ~pattern with
  | None -> 0
  | Some (sp, ep) -> ep - sp + 1
