(** Prefix-doubling suffix array (Manber–Myers style, O(n log² n)).

    Slower than {!Sais} but independent of it; serves as the testing
    oracle for the SA-IS implementation and as a fallback readable
    reference. Same input/output convention as {!Sais.suffix_array},
    except symbols may be any non-negative integers. *)

val suffix_array : int array -> int array
