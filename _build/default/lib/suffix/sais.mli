(** Linear-time suffix array construction (SA-IS, Nong–Zhang–Chan).

    Input is a text over positive integer symbols; a unique sentinel 0
    (smaller than every symbol) is appended internally and removed from
    the result, so the returned array is a permutation of [0 .. n-1] with
    suffixes compared by the usual "end of string is smallest" rule. *)

val suffix_array : int array -> int array
(** [suffix_array text] where every [text.(i) >= 1]. O(n + K) time and
    space, K = max symbol + 1. Raises [Invalid_argument] on a symbol
    [< 1]. *)
