(** Longest-common-prefix array (Kasai et al., O(n)).

    [kasai ~text ~sa] returns [lcp] with [lcp.(0) = 0] and, for
    [i >= 1], [lcp.(i)] = length of the longest common prefix of the
    suffixes [sa.(i-1)] and [sa.(i)]. *)

val kasai : text:int array -> sa:int array -> int array

val rank_of_sa : int array -> int array
(** Inverse permutation: [rank.(sa.(i)) = i]. *)
