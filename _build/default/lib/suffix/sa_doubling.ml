let suffix_array text =
  let n = Array.length text in
  if n = 0 then [||]
  else begin
    let sa = Array.init n (fun i -> i) in
    let rank = Array.copy text in
    let tmp = Array.make n 0 in
    let k = ref 1 in
    let rank_at i = if i >= n then -1 else rank.(i) in
    let compare_pair a b =
      let c = compare rank.(a) rank.(b) in
      if c <> 0 then c else compare (rank_at (a + !k)) (rank_at (b + !k))
    in
    let continue = ref true in
    while !continue do
      Array.sort compare_pair sa;
      tmp.(sa.(0)) <- 0;
      for i = 1 to n - 1 do
        tmp.(sa.(i)) <-
          (tmp.(sa.(i - 1)) + if compare_pair sa.(i - 1) sa.(i) = 0 then 0 else 1)
      done;
      Array.blit tmp 0 rank 0 n;
      if rank.(sa.(n - 1)) = n - 1 || !k >= n then continue := false
      else k := !k * 2
    done;
    sa
  end
