(* SA-IS: induced sorting with LMS substrings (Nong, Zhang, Chan 2009).

   [core s k] computes the suffix array of [s], an int array over
   alphabet [0..k-1] whose last symbol is 0, occurring nowhere else and
   strictly smaller than every other symbol. *)

let rec core s k =
  let n = Array.length s in
  let sa = Array.make n (-1) in
  if n = 1 then begin
    sa.(0) <- 0;
    sa
  end
  else begin
    (* S/L types: t.(i) = true iff suffix i is S-type. *)
    let t = Array.make n false in
    t.(n - 1) <- true;
    for i = n - 2 downto 0 do
      t.(i) <- s.(i) < s.(i + 1) || (s.(i) = s.(i + 1) && t.(i + 1))
    done;
    let is_lms i = i > 0 && t.(i) && not t.(i - 1) in
    let bucket_sizes = Array.make k 0 in
    Array.iter (fun c -> bucket_sizes.(c) <- bucket_sizes.(c) + 1) s;
    let bucket_heads () =
      let b = Array.make k 0 in
      let sum = ref 0 in
      for c = 0 to k - 1 do
        b.(c) <- !sum;
        sum := !sum + bucket_sizes.(c)
      done;
      b
    in
    let bucket_tails () =
      let b = Array.make k 0 in
      let sum = ref 0 in
      for c = 0 to k - 1 do
        sum := !sum + bucket_sizes.(c);
        b.(c) <- !sum
      done;
      b
    in
    (* Induce the full SA from LMS suffixes placed (in the order given,
       filled backwards from bucket tails) then L-pass then S-pass. *)
    let induce place_lms =
      Array.fill sa 0 n (-1);
      let tails = bucket_tails () in
      place_lms tails;
      let heads = bucket_heads () in
      for j = 0 to n - 1 do
        let i = sa.(j) in
        if i > 0 && not t.(i - 1) then begin
          let c = s.(i - 1) in
          sa.(heads.(c)) <- i - 1;
          heads.(c) <- heads.(c) + 1
        end
      done;
      let tails = bucket_tails () in
      for j = n - 1 downto 0 do
        let i = sa.(j) in
        if i > 0 && t.(i - 1) then begin
          let c = s.(i - 1) in
          tails.(c) <- tails.(c) - 1;
          sa.(tails.(c)) <- i - 1
        end
      done
    in
    (* Pass 1: place LMS positions in text order (any order is fine for
       sorting LMS substrings). *)
    let lms = ref [] in
    for i = n - 1 downto 1 do
      if is_lms i then lms := i :: !lms
    done;
    let lms = Array.of_list !lms in
    let nlms = Array.length lms in
    induce (fun tails ->
        for j = nlms - 1 downto 0 do
          let i = lms.(j) in
          let c = s.(i) in
          tails.(c) <- tails.(c) - 1;
          sa.(tails.(c)) <- i
        done);
    (* Extract LMS substrings in sorted order and name them. *)
    let sorted_lms = Array.make nlms 0 in
    let idx = ref 0 in
    for j = 0 to n - 1 do
      if is_lms sa.(j) then begin
        sorted_lms.(!idx) <- sa.(j);
        incr idx
      end
    done;
    (* Compare two LMS substrings (start to next LMS position,
       inclusive). *)
    let next_lms = Array.make (n + 1) n in
    let last = ref n in
    for i = n - 1 downto 1 do
      if is_lms i then begin
        next_lms.(i) <- !last;
        last := i
      end
    done;
    let lms_equal a b =
      if a = b then true
      else begin
        let ea = Stdlib.min n (next_lms.(a)) and eb = Stdlib.min n (next_lms.(b)) in
        let la = ea - a and lb = eb - b in
        if la <> lb then false
        else begin
          let rec go off =
            if off > la then true
            else if a + off >= n || b + off >= n then a + off >= n && b + off >= n
            else if s.(a + off) <> s.(b + off) || t.(a + off) <> t.(b + off)
            then false
            else go (off + 1)
          in
          go 0
        end
      end
    in
    let names = Array.make n (-1) in
    let name = ref 0 in
    if nlms > 0 then begin
      names.(sorted_lms.(0)) <- 0;
      for j = 1 to nlms - 1 do
        if not (lms_equal sorted_lms.(j - 1) sorted_lms.(j)) then incr name;
        names.(sorted_lms.(j)) <- !name
      done
    end;
    let distinct = !name + 1 in
    (* Order of LMS suffixes: recurse on the reduced string if names
       repeat, otherwise read off directly. *)
    let lms_order =
      if distinct = nlms then begin
        (* all distinct: sorted substring order = sorted suffix order *)
        sorted_lms
      end
      else begin
        let reduced = Array.map (fun i -> names.(i)) lms in
        let rsa = core reduced distinct in
        Array.map (fun j -> lms.(j)) rsa
      end
    in
    induce (fun tails ->
        for j = Array.length lms_order - 1 downto 0 do
          let i = lms_order.(j) in
          let c = s.(i) in
          tails.(c) <- tails.(c) - 1;
          sa.(tails.(c)) <- i
        done);
    sa
  end

let suffix_array text =
  let n = Array.length text in
  let maxc = Array.fold_left Stdlib.max 0 text in
  Array.iteri
    (fun i c ->
      if c < 1 then
        invalid_arg (Printf.sprintf "Sais.suffix_array: symbol %d at %d < 1" c i))
    text;
  let s = Array.make (n + 1) 0 in
  Array.blit text 0 s 0 n;
  let sa = core s (maxc + 1) in
  (* Drop the sentinel suffix (always first). *)
  Array.sub sa 1 n
