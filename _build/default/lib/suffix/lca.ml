type t = {
  up : int array array; (* up.(k).(v) = 2^k-th ancestor, -1 above root *)
  depth : int array; (* hop depth *)
  levels : int;
}

let build ~parent ~root =
  let n = Array.length parent in
  let depth = Array.make n (-1) in
  depth.(root) <- 0;
  (* Iterative depth computation: follow parent chains, memoizing. *)
  let stack = ref [] in
  for v = 0 to n - 1 do
    if depth.(v) < 0 then begin
      let u = ref v in
      while depth.(!u) < 0 do
        stack := !u :: !stack;
        u := parent.(!u)
      done;
      let d = ref depth.(!u) in
      List.iter
        (fun w ->
          incr d;
          depth.(w) <- !d)
        !stack;
      stack := []
    end
  done;
  let maxd = Array.fold_left Stdlib.max 0 depth in
  let levels =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    1 + go 0 (Stdlib.max 1 maxd)
  in
  let up = Array.make levels [||] in
  up.(0) <- Array.copy parent;
  for k = 1 to levels - 1 do
    let prev = up.(k - 1) in
    up.(k) <-
      Array.init n (fun v ->
          let mid = prev.(v) in
          if mid < 0 then -1 else prev.(mid))
  done;
  { up; depth; levels }

let tree_depth t v = t.depth.(v)

let ancestor_at t v target_depth =
  let u = ref v in
  let diff = ref (t.depth.(v) - target_depth) in
  let k = ref 0 in
  while !diff > 0 do
    if !diff land 1 = 1 then u := t.up.(!k).(!u);
    diff := !diff lsr 1;
    incr k
  done;
  !u

let query t a b =
  let a, b =
    if t.depth.(a) >= t.depth.(b) then (ancestor_at t a t.depth.(b), b)
    else (a, ancestor_at t b t.depth.(a))
  in
  if a = b then a
  else begin
    let a = ref a and b = ref b in
    for k = t.levels - 1 downto 0 do
      if t.up.(k).(!a) <> t.up.(k).(!b) then begin
        a := t.up.(k).(!a);
        b := t.up.(k).(!b)
      end
    done;
    t.up.(0).(!a)
  end

let is_ancestor t ~anc ~desc =
  t.depth.(desc) >= t.depth.(anc) && ancestor_at t desc t.depth.(anc) = anc
