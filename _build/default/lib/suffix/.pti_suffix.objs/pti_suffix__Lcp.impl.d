lib/suffix/lcp.ml: Array Stdlib
