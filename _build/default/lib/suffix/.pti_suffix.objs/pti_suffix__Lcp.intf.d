lib/suffix/lcp.mli:
