lib/suffix/sa_search.mli:
