lib/suffix/sais.ml: Array Printf Stdlib
