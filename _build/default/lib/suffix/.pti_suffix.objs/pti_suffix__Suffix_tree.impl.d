lib/suffix/suffix_tree.ml: Array Hashtbl List Stdlib
