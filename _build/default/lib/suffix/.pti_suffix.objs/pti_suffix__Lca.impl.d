lib/suffix/lca.ml: Array List Stdlib
