lib/suffix/sa_search.ml: Array
