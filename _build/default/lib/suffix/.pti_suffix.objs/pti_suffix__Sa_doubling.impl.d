lib/suffix/sa_doubling.ml: Array
