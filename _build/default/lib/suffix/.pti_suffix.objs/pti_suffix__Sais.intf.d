lib/suffix/sais.mli:
