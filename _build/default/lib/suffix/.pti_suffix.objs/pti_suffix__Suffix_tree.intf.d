lib/suffix/suffix_tree.mli:
