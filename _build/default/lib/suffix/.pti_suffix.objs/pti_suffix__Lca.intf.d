lib/suffix/lca.mli:
