lib/suffix/sa_doubling.mli:
