module Logp = Pti_prob.Logp

let count u =
  let n = Ustring.length u in
  let rec go acc i =
    if i = n then acc
    else begin
      let c = Array.length (Ustring.choices u i) in
      if acc > max_int / c then max_int else go (acc * c) (i + 1)
    end
  in
  go 1 0

(* Upper bound on the probability any window can assign to [sym] at
   [pos]: the marginal, or for a correlated character the best of its
   marginal and both conditionals. Used to prune DFS soundly. *)
let upper_bound u ~pos ~sym =
  let marg = Ustring.prob u ~pos ~sym in
  match Correlation.find (Ustring.correlations u) ~dep_pos:pos ~dep_sym:sym with
  | None -> marg
  | Some r -> Float.max marg (Float.max r.p_present r.p_absent)

let enumerate ?(limit = 1_000_000) u =
  let n = Ustring.length u in
  let total = count u in
  if total > limit then
    invalid_arg
      (Printf.sprintf "Worlds.enumerate: %d worlds exceed limit %d" total limit);
  let buf = Array.make n 0 in
  let acc = ref [] in
  let rec go i =
    if i = n then begin
      let w = Array.copy buf in
      let p = Oracle.occurrence_logp u ~pattern:w ~pos:0 in
      acc := (w, p) :: !acc
    end
    else
      Array.iter
        (fun (c : Ustring.choice) ->
          buf.(i) <- c.sym;
          go (i + 1))
        (Ustring.choices u i)
  in
  if n = 0 then []
  else begin
    go 0;
    List.rev !acc
  end

let matched_strings_at u ~pos ~len ~tau =
  let n = Ustring.length u in
  if len < 1 || pos < 0 || pos + len > n then []
  else begin
    let buf = Array.make len 0 in
    let acc = ref [] in
    let rec go i ub =
      if Logp.(ub <= tau) then ()
      else if i = len then begin
        let w = Array.copy buf in
        let p = Oracle.occurrence_logp u ~pattern:w ~pos in
        if Logp.(p > tau) then acc := (w, p) :: !acc
      end
      else
        Array.iter
          (fun (c : Ustring.choice) ->
            buf.(i) <- c.sym;
            let b = upper_bound u ~pos:(pos + i) ~sym:c.sym in
            go (i + 1) (Logp.mul ub (Logp.of_prob_unchecked b)))
          (Ustring.choices u (pos + i))
    in
    go 0 Logp.one;
    List.rev !acc
  end
