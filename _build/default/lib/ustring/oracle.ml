(* Exact matching probabilities, computed directly from the uncertain
   string. This is the dynamic-programming/online baseline of Li et al.
   (related work, "Algorithmic Approach"): no index, O(n * m) per query.
   It doubles as the ground truth for every index in the test suite. *)

module Logp = Pti_prob.Logp

(* Probability of the pattern matching at [pos], following the paper's
   correlation semantics (§3.3, §4.1): the probability of a correlated
   character is its conditional p+/p- when the window covers the source
   position, and the stored marginal mixture otherwise; uncorrelated
   characters contribute their marginals. *)
let occurrence_logp u ~pattern ~pos =
  let n = Ustring.length u and m = Array.length pattern in
  if m = 0 then invalid_arg "Oracle.occurrence_logp: empty pattern";
  if pos < 0 || pos + m > n then Logp.zero
  else begin
    let corr = Ustring.correlations u in
    let acc = ref Logp.one in
    (try
       for k = 0 to m - 1 do
         let j = pos + k in
         let sym = pattern.(k) in
         let p =
           match Correlation.find corr ~dep_pos:j ~dep_sym:sym with
           | None -> Ustring.prob u ~pos:j ~sym
           | Some r ->
               if r.src_pos >= pos && r.src_pos < pos + m then
                 if pattern.(r.src_pos - pos) = r.src_sym then r.p_present
                 else r.p_absent
               else Ustring.prob u ~pos:j ~sym
         in
         if p <= 0.0 then begin
           acc := Logp.zero;
           raise Exit
         end;
         acc := Logp.mul !acc (Logp.of_prob p)
       done
     with Exit -> ());
    !acc
  end

(* Marginal-only variant: what the index's probability arrays encode
   before the query-time correlation correction. *)
let occurrence_logp_marginal u ~pattern ~pos =
  let n = Ustring.length u and m = Array.length pattern in
  if m = 0 then invalid_arg "Oracle.occurrence_logp_marginal: empty pattern";
  if pos < 0 || pos + m > n then Logp.zero
  else begin
    let acc = ref Logp.one in
    (try
       for k = 0 to m - 1 do
         let p = Ustring.prob u ~pos:(pos + k) ~sym:pattern.(k) in
         if p <= 0.0 then begin
           acc := Logp.zero;
           raise Exit
         end;
         acc := Logp.mul !acc (Logp.of_prob p)
       done
     with Exit -> ());
    !acc
  end

(* All positions where the pattern matches with probability > tau,
   in increasing position order. *)
let occurrences u ~pattern ~tau =
  let n = Ustring.length u and m = Array.length pattern in
  let acc = ref [] in
  for pos = n - m downto 0 do
    let p = occurrence_logp u ~pattern ~pos in
    if Logp.(p > tau) then acc := (pos, p) :: !acc
  done;
  !acc

let count u ~pattern ~tau = List.length (occurrences u ~pattern ~tau)

(* Relevance metrics for string listing (§6). [Rel_max] is the maximum
   occurrence probability; [Rel_or] is sum - product over all nonzero
   occurrence probabilities. *)
let relevance_max u ~pattern =
  let n = Ustring.length u and m = Array.length pattern in
  let best = ref Logp.zero in
  for pos = 0 to n - m do
    best := Logp.max !best (occurrence_logp u ~pattern ~pos)
  done;
  !best

let relevance_or u ~pattern =
  let n = Ustring.length u and m = Array.length pattern in
  let sum = ref 0.0 and prod = ref 1.0 and any = ref false in
  for pos = 0 to n - m do
    let p = Logp.to_prob (occurrence_logp u ~pattern ~pos) in
    if p > 0.0 then begin
      any := true;
      sum := !sum +. p;
      prod := !prod *. p
    end
  done;
  if not !any then Logp.zero
  else Logp.of_prob (Float.max 0.0 (Float.min 1.0 (!sum -. !prod)))
