(** Possible-world semantics (§1, Figure 1(b)).

    Exponential-size enumeration, intended for examples and for testing
    the indexes on small strings. *)

module Logp = Pti_prob.Logp

val count : Ustring.t -> int
(** Number of possible worlds (product of per-position choice counts);
    saturates at [max_int]. *)

val enumerate : ?limit:int -> Ustring.t -> (Sym.t array * Logp.t) list
(** All possible worlds with their probabilities, lexicographic in the
    order choices are listed. Raises [Invalid_argument] if there are
    more than [limit] (default 1_000_000) worlds. With correlation
    rules, a world's probability uses the conditional probability for
    dependent characters (so the paper's occurrence probabilities are
    recovered as sums over worlds). *)

val matched_strings_at :
  Ustring.t -> pos:int -> len:int -> tau:Logp.t ->
  (Sym.t array * Logp.t) list
(** All deterministic strings of length [len] that match at [pos] with
    probability strictly above [tau], by DFS with upper-bound pruning.
    Probabilities are exact ({!Oracle.occurrence_logp}). *)
