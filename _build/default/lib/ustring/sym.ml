type t = int

let separator = 1

let of_char c =
  let code = Char.code c in
  if code <= 1 then invalid_arg "Sym.of_char: reserved code"
  else code

let to_char t =
  if t = separator then '$'
  else if t > 1 && t < 256 then Char.chr t
  else invalid_arg (Printf.sprintf "Sym.to_char: %d not a byte symbol" t)

let of_string s = Array.init (String.length s) (fun i -> of_char s.[i])

let to_string a =
  String.init (Array.length a) (fun i -> to_char a.(i))

let is_separator t = t = separator

let pp ppf t = Format.pp_print_char ppf (to_char t)
