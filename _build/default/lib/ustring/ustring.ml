module Logp = Pti_prob.Logp

type choice = { sym : Sym.t; prob : float }

type t = {
  positions : choice array array;
  correlations : Correlation.t;
}

let sum_eps = 1e-6

let validate_position i pos =
  if Array.length pos = 0 then
    invalid_arg (Printf.sprintf "Ustring.make: empty position %d" i);
  let seen = Hashtbl.create 8 in
  let sum = ref 0.0 in
  Array.iter
    (fun { sym; prob } ->
      if sym = Sym.separator then
        invalid_arg
          (Printf.sprintf "Ustring.make: reserved separator symbol at %d" i);
      if sym < 1 then
        invalid_arg (Printf.sprintf "Ustring.make: invalid symbol at %d" i);
      if prob <= 0.0 || prob > 1.0 then
        invalid_arg
          (Printf.sprintf "Ustring.make: probability %g at %d not in (0,1]"
             prob i);
      if Hashtbl.mem seen sym then
        invalid_arg (Printf.sprintf "Ustring.make: duplicate symbol at %d" i);
      Hashtbl.replace seen sym ();
      sum := !sum +. prob)
    pos;
  if !sum > 1.0 +. sum_eps then
    invalid_arg
      (Printf.sprintf "Ustring.make: probabilities at %d sum to %g > 1" i !sum)

let find_choice positions pos sym =
  if pos < 0 || pos >= Array.length positions then None
  else
    Array.find_opt (fun c -> c.sym = sym) positions.(pos)

let validate_correlations positions (corr : Correlation.t) =
  List.iter
    (fun (r : Correlation.rule) ->
      let n = Array.length positions in
      if r.dep_pos < 0 || r.dep_pos >= n || r.src_pos < 0 || r.src_pos >= n then
        invalid_arg "Ustring.make: correlation rule position out of range";
      let dep =
        match find_choice positions r.dep_pos r.dep_sym with
        | Some c -> c
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Ustring.make: correlation dependent symbol absent at %d"
                 r.dep_pos)
      in
      let src =
        match find_choice positions r.src_pos r.src_sym with
        | Some c -> c
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Ustring.make: correlation source symbol absent at %d"
                 r.src_pos)
      in
      let mix = Correlation.marginal r ~src_prob:src.prob in
      if Float.abs (mix -. dep.prob) > 1e-6 then
        invalid_arg
          (Printf.sprintf
             "Ustring.make: rule at %d inconsistent with marginal (%g vs %g)"
             r.dep_pos mix dep.prob))
    (Correlation.rules corr)

let make ?(correlations = []) positions =
  Array.iteri validate_position positions;
  let corr = Correlation.of_rules correlations in
  validate_correlations positions corr;
  { positions = Array.map Array.copy positions; correlations = corr }

let length t = Array.length t.positions
let choices t i = t.positions.(i)
let correlations t = t.correlations

let prob t ~pos ~sym =
  match find_choice t.positions pos sym with
  | Some c -> c.prob
  | None -> 0.0

let logp t ~pos ~sym = Logp.of_prob (prob t ~pos ~sym)

let n_choices t =
  Array.fold_left (fun acc p -> acc + Array.length p) 0 t.positions

let max_choices t =
  Array.fold_left (fun acc p -> Stdlib.max acc (Array.length p)) 0 t.positions

let is_special t =
  Array.for_all (fun p -> Array.length p = 1) t.positions

let is_deterministic t =
  Array.for_all (fun p -> Array.length p = 1 && p.(0).prob >= 1.0) t.positions

let validate ?(eps = 1e-6) t =
  let bad = ref None in
  Array.iteri
    (fun i p ->
      if !bad = None then begin
        let sum = Array.fold_left (fun s c -> s +. c.prob) 0.0 p in
        if Float.abs (sum -. 1.0) > eps then
          bad := Some (Printf.sprintf "position %d sums to %g" i sum)
      end)
    t.positions;
  match !bad with None -> Ok () | Some msg -> Error msg

let of_det syms =
  make (Array.map (fun sym -> [| { sym; prob = 1.0 } |]) syms)

let of_string s = of_det (Sym.of_string s)

let parse_choice i token =
  match String.index_opt token ':' with
  | None ->
      if String.length token <> 1 then
        invalid_arg
          (Printf.sprintf "Ustring.parse: bad choice %S at position %d" token i);
      { sym = Sym.of_char token.[0]; prob = 1.0 }
  | Some j ->
      if j <> 1 then
        invalid_arg
          (Printf.sprintf "Ustring.parse: bad choice %S at position %d" token i);
      let prob =
        match float_of_string_opt (String.sub token 2 (String.length token - 2))
        with
        | Some p -> p
        | None ->
            invalid_arg
              (Printf.sprintf "Ustring.parse: bad probability in %S" token)
      in
      { sym = Sym.of_char token.[0]; prob }

let parse s =
  let fields =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun f -> f <> "")
  in
  if fields = [] then invalid_arg "Ustring.parse: empty input";
  let position i field =
    String.split_on_char ',' field
    |> List.filter (fun f -> f <> "")
    |> List.map (parse_choice i)
    |> Array.of_list
  in
  make (Array.of_list (List.mapi position fields))

let to_text t =
  let buf = Buffer.create (16 * length t) in
  Array.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ' ';
      Array.iteri
        (fun j { sym; prob } ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf (Sym.to_char sym);
          (* 12 significant digits: lossless enough for the parse
             roundtrip (the per-position sum check has 1e-6 slack) while
             keeping common values like 0.3 short *)
          if prob < 1.0 then Buffer.add_string buf (Printf.sprintf ":%.12g" prob))
        p)
    t.positions;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_text t)

let sample rng t =
  let n = length t in
  let world = Array.make n 0 in
  let draw_pos ?(override : (Sym.t * float * float) option) i =
    let pos = t.positions.(i) in
    (* With an override (dep_sym, p_cond) from a correlation rule, the
       dependent symbol's probability is replaced by the conditional and
       the rest of the mass is rescaled proportionally. *)
    let weight c =
      match override with
      | Some (sym, cond, marg) ->
          if c.sym = sym then cond
          else begin
            let rest = 1.0 -. marg in
            if rest <= 0.0 then 0.0 else c.prob *. (1.0 -. cond) /. rest
          end
      | None -> c.prob
    in
    let total = Array.fold_left (fun s c -> s +. weight c) 0.0 pos in
    let r = Random.State.float rng (Stdlib.max total 1e-30) in
    let acc = ref 0.0 in
    let picked = ref pos.(Array.length pos - 1).sym in
    (try
       Array.iter
         (fun c ->
           acc := !acc +. weight c;
           if r <= !acc then begin
             picked := c.sym;
             raise Exit
           end)
         pos
     with Exit -> ());
    world.(i) <- !picked
  in
  (* Draw positions that are correlation sources first, then dependents
     conditioned on the drawn source, then the rest. *)
  let rules = Correlation.rules t.correlations in
  let handled = Hashtbl.create 8 in
  List.iter
    (fun (r : Correlation.rule) ->
      if not (Hashtbl.mem handled r.src_pos) then begin
        draw_pos r.src_pos;
        Hashtbl.replace handled r.src_pos ()
      end)
    rules;
  List.iter
    (fun (r : Correlation.rule) ->
      if not (Hashtbl.mem handled r.dep_pos) then begin
        let cond =
          if world.(r.src_pos) = r.src_sym then r.p_present else r.p_absent
        in
        let marg = prob t ~pos:r.dep_pos ~sym:r.dep_sym in
        draw_pos ~override:(r.dep_sym, cond, marg) r.dep_pos;
        Hashtbl.replace handled r.dep_pos ()
      end)
    rules;
  for i = 0 to n - 1 do
    if not (Hashtbl.mem handled i) then draw_pos i
  done;
  world

let concat ~sep ds =
  let starts = Array.make (List.length ds) 0 in
  let parts = ref [] in
  let rules = ref [] in
  let offset = ref 0 in
  List.iteri
    (fun k d ->
      if k > 0 then begin
        match sep with
        | Some s ->
            parts := [| { sym = s; prob = 1.0 } |] :: !parts;
            incr offset
        | None -> ()
      end;
      starts.(k) <- !offset;
      Array.iter (fun p -> parts := p :: !parts) d.positions;
      List.iter
        (fun (r : Correlation.rule) ->
          rules :=
            {
              r with
              Correlation.dep_pos = r.Correlation.dep_pos + !offset;
              src_pos = r.Correlation.src_pos + !offset;
            }
            :: !rules)
        (Correlation.rules d.correlations);
      offset := !offset + length d)
    ds;
  let positions = Array.of_list (List.rev !parts) in
  (* Bypass [make]'s separator check by constructing directly; the
     separator positions are deterministic and validated here. *)
  Array.iteri
    (fun i p -> if p.(0).sym <> Sym.separator then validate_position i p)
    positions;
  let corr = Correlation.of_rules !rules in
  ({ positions; correlations = corr }, starts)
