(** Symbols of the indexed alphabet.

    A symbol is a positive integer. Character symbols are byte codes
    (so ≥ 32 for printable text); code {!separator} = 1 is reserved for
    the factor/document separators introduced by the transformation and
    never collides with a character symbol. *)

type t = int

val separator : t
(** The reserved separator symbol (1). *)

val of_char : char -> t
(** Byte code of the character; raises [Invalid_argument] on ['\000'] or
    ['\001']. *)

val to_char : t -> char
(** Printable form; {!separator} prints as ['$'], non-byte symbols raise
    [Invalid_argument]. *)

val of_string : string -> t array
val to_string : t array -> string
val is_separator : t -> bool
val pp : Format.formatter -> t -> unit
