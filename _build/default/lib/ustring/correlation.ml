type rule = {
  dep_pos : int;
  dep_sym : Sym.t;
  src_pos : int;
  src_sym : Sym.t;
  p_present : float;
  p_absent : float;
}

type t = {
  by_dep : (int * Sym.t, rule) Hashtbl.t;
  by_dep_pos : (int, rule) Hashtbl.t; (* multi-binding: all rules at a dep position *)
  all : rule list;
}

let empty = { by_dep = Hashtbl.create 1; by_dep_pos = Hashtbl.create 1; all = [] }

let is_empty t = t.all = []

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Correlation: %s=%g not in [0,1]" name p)

let of_rules rules =
  let by_dep = Hashtbl.create 16 in
  let by_dep_pos = Hashtbl.create 16 in
  let dep_positions = Hashtbl.create 16 in
  List.iter
    (fun r ->
      check_prob "p_present" r.p_present;
      check_prob "p_absent" r.p_absent;
      if r.dep_pos = r.src_pos then
        invalid_arg "Correlation: rule correlates a position with itself";
      if Hashtbl.mem by_dep (r.dep_pos, r.dep_sym) then
        invalid_arg
          (Printf.sprintf "Correlation: duplicate rule for position %d" r.dep_pos);
      Hashtbl.replace by_dep (r.dep_pos, r.dep_sym) r;
      Hashtbl.add by_dep_pos r.dep_pos r;
      Hashtbl.replace dep_positions r.dep_pos ())
    rules;
  List.iter
    (fun r ->
      if Hashtbl.mem dep_positions r.src_pos then
        invalid_arg
          (Printf.sprintf
             "Correlation: chained correlation through position %d" r.src_pos))
    rules;
  { by_dep; by_dep_pos; all = rules }

let rules t = t.all

let find t ~dep_pos ~dep_sym = Hashtbl.find_opt t.by_dep (dep_pos, dep_sym)

let marginal r ~src_prob = (src_prob *. r.p_present) +. ((1.0 -. src_prob) *. r.p_absent)

let affecting_window t ~pos ~len =
  if t.all = [] then []
  else begin
    let acc = ref [] in
    for p = pos + len - 1 downto pos do
      List.iter (fun r -> acc := r :: !acc) (Hashtbl.find_all t.by_dep_pos p)
    done;
    !acc
  end
