(** Index-free exact matching (the online/DP baseline and the ground
    truth of the test suite).

    All thresholds use strict comparison ([probability > tau]), matching
    the paper's query definition "probability of occurrence greater than
    τ". *)

module Logp = Pti_prob.Logp

val occurrence_logp : Ustring.t -> pattern:Sym.t array -> pos:int -> Logp.t
(** Probability that [pattern] matches at [pos], with the correlation
    semantics of §3.3/§4.1 (conditional probability when the window
    covers the source position, marginal mixture otherwise). [Logp.zero]
    when the window does not fit. *)

val occurrence_logp_marginal :
  Ustring.t -> pattern:Sym.t array -> pos:int -> Logp.t
(** Same, ignoring correlation rules (pure product of marginals); this
    is the quantity the index's probability arrays encode before the
    query-time correction. *)

val occurrences :
  Ustring.t -> pattern:Sym.t array -> tau:Logp.t -> (int * Logp.t) list
(** All matches with probability strictly above [tau], in increasing
    position order. O(n·m). *)

val count : Ustring.t -> pattern:Sym.t array -> tau:Logp.t -> int

val relevance_max : Ustring.t -> pattern:Sym.t array -> Logp.t
(** Maximum occurrence probability over all positions ([Rel_max]). *)

val relevance_or : Ustring.t -> pattern:Sym.t array -> Logp.t
(** [Rel_or] = Σp − Πp over all nonzero occurrence probabilities,
    clamped into [0, 1] (the paper's OR metric can exceed 1 for three or
    more occurrences; clamping never changes a threshold comparison
    against a probability τ ≤ 1). *)
