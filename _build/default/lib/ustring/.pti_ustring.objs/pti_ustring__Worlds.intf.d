lib/ustring/worlds.mli: Pti_prob Sym Ustring
