lib/ustring/correlation.mli: Sym
