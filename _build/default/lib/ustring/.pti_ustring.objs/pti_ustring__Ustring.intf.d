lib/ustring/ustring.mli: Correlation Format Pti_prob Random Sym
