lib/ustring/worlds.ml: Array Correlation Float List Oracle Printf Pti_prob Ustring
