lib/ustring/ustring.ml: Array Buffer Correlation Float Format Hashtbl List Printf Pti_prob Random Stdlib String Sym
