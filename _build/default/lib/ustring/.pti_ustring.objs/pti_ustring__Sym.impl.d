lib/ustring/sym.ml: Array Char Format Printf String
