lib/ustring/correlation.ml: Hashtbl List Printf Sym
