lib/ustring/oracle.mli: Pti_prob Sym Ustring
