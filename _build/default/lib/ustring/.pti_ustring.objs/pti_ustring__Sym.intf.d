lib/ustring/sym.mli: Format
