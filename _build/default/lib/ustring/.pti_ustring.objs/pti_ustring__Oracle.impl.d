lib/ustring/oracle.ml: Array Correlation Float List Pti_prob Ustring
