(** Correlation among string positions (§3.3 of the paper).

    A rule ties the probability of symbol [dep_sym] at position
    [dep_pos] to what happens at position [src_pos]:

    - if the matched window covers [src_pos] and the matched character
      there is [src_sym], the conditional probability [p_present]
      applies;
    - if the window covers [src_pos] with a different character,
      [p_absent] applies;
    - if [src_pos] lies outside the window, the marginal mixture
      [pr(src_sym) * p_present + (1 - pr(src_sym)) * p_absent] applies —
      which is exactly the marginal stored in the position distribution.

    At most one rule may target a given [(dep_pos, dep_sym)] pair, and a
    rule's source may not itself be the dependent of another rule
    (no chained correlations — same restriction as the paper's examples). *)

type rule = {
  dep_pos : int;
  dep_sym : Sym.t;
  src_pos : int;
  src_sym : Sym.t;
  p_present : float; (** pr(dep_sym at dep_pos | src_sym at src_pos) *)
  p_absent : float; (** pr(dep_sym at dep_pos | not src_sym at src_pos) *)
}

type t

val empty : t
val is_empty : t -> bool
val of_rules : rule list -> t
(** Validates pairwise constraints; raises [Invalid_argument] on
    duplicate targets, chained correlations, [dep_pos = src_pos], or
    probabilities outside [0, 1]. *)

val rules : t -> rule list

val find : t -> dep_pos:int -> dep_sym:Sym.t -> rule option
(** The rule targeting this (position, symbol), if any. *)

val marginal : rule -> src_prob:float -> float
(** The mixture probability the rule induces given the marginal
    probability of the source symbol. *)

val affecting_window : t -> pos:int -> len:int -> rule list
(** Rules whose [dep_pos] falls inside [\[pos, pos+len)]. *)
