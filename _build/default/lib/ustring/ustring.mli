(** Character-level uncertain strings (§3.1).

    An uncertain string is a sequence of positions; each position is a
    non-empty set of (symbol, probability) choices whose probabilities
    sum to at most 1 (exactly 1 for a distribution that is fully
    specified — see {!validate}). A deterministic string is the special
    case of one choice of probability 1 per position; a *special
    uncertain string* (Definition 1) has exactly one choice per position
    with probability in (0, 1]. *)

type choice = { sym : Sym.t; prob : float }

type t

val make : ?correlations:Correlation.rule list -> choice array array -> t
(** Validates: every position non-empty, probabilities in (0, 1], sums
    ≤ 1 + ε, symbols distinct within a position and never the reserved
    separator; correlation rules must reference existing positions and
    symbols and be consistent with the stored marginals (the stored
    probability of the dependent symbol must equal the rule's mixture
    within 1e-6). Raises [Invalid_argument] otherwise. *)

val length : t -> int
(** Number of positions (not characters). *)

val choices : t -> int -> choice array
val correlations : t -> Correlation.t

val prob : t -> pos:int -> sym:Sym.t -> float
(** Marginal probability of [sym] at [pos]; 0 if the symbol is not a
    choice there. *)

val logp : t -> pos:int -> sym:Sym.t -> Pti_prob.Logp.t

val n_choices : t -> int
(** Total number of (position, symbol) choices. *)

val max_choices : t -> int
(** Maximum choices at any single position. *)

val is_special : t -> bool
(** One choice per position (Definition 1). *)

val is_deterministic : t -> bool

val validate : ?eps:float -> t -> (unit, string) result
(** Checks every position's probabilities sum to 1 within [eps]
    (default 1e-6). [make] does not require this, so partially
    specified distributions can be represented; the paper's model
    assumes fully specified ones. *)

val of_det : Sym.t array -> t
val of_string : string -> t
(** Deterministic uncertain string from plain text. *)

val parse : string -> t
(** Parses the compact text format: positions separated by whitespace,
    choices within a position separated by [','], each choice
    [CHAR:PROB] or a bare [CHAR] (probability 1). Example:
    ["A:.3,B:.4,D:.3 A:.6,C:.4 D A:.5,C:.5 A"] is the string of
    Figure 1(a). Raises [Invalid_argument] on malformed input. *)

val to_text : t -> string
(** Inverse of {!parse} (one line). *)

val pp : Format.formatter -> t -> unit

val sample : Random.State.t -> t -> Sym.t array
(** Draws one possible world (position-independent sampling; correlation
    rules are honoured by drawing sources first). Positions whose
    probabilities sum to less than 1 renormalise. *)

val concat : sep:Sym.t option -> t list -> t * int array
(** [concat ~sep ds] concatenates uncertain strings, inserting a
    deterministic separator symbol between them when [sep] is given.
    Also returns the start offset of each input. Correlation rules are
    re-based onto the concatenated coordinates. *)
