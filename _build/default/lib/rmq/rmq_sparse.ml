(** Sparse-table RMQ: O(n log n) words, O(1) query. The table stores
    argmax indices; the value oracle is consulted once per query to merge
    the two overlapping windows (and O(n log n) times at build). *)

type t = {
  table : int array array; (* table.(k).(i) = leftmost argmax of [i, i + 2^k) *)
  value : int -> float;
  len : int;
}

let floor_log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let build_oracle ~value ~len =
  if len = 0 then { table = [||]; value; len = 0 }
  else begin
    let levels = floor_log2 len + 1 in
    let table = Array.make levels [||] in
    table.(0) <- Array.init len (fun i -> i);
    for k = 1 to levels - 1 do
      let width = 1 lsl k in
      let m = len - width + 1 in
      let prev = table.(k - 1) in
      let row = Array.make (Stdlib.max m 0) 0 in
      for i = 0 to m - 1 do
        let a = prev.(i) and b = prev.(i + (width lsr 1)) in
        (* strict [>] keeps the leftmost argmax on ties *)
        row.(i) <- (if value b > value a then b else a)
      done;
      table.(k) <- row
    done;
    { table; value; len }
  end

let build a =
  let a = Array.copy a in
  build_oracle ~value:(fun i -> a.(i)) ~len:(Array.length a)

let length t = t.len

let query t ~l ~r =
  if l < 0 || r >= t.len || l > r then
    invalid_arg
      (Printf.sprintf "Rmq_sparse.query: [%d,%d] not in [0,%d)" l r t.len);
  let k = floor_log2 (r - l + 1) in
  let a = t.table.(k).(l) and b = t.table.(k).(r - (1 lsl k) + 1) in
  if a = b then a
  else begin
    let va = t.value a and vb = t.value b in
    if vb > va then b else if va > vb then a else Stdlib.min a b
  end

let size_words t =
  Array.fold_left (fun acc row -> acc + Array.length row) 3 t.table
