lib/rmq/rmq_intf.ml:
