lib/rmq/rmq.mli: Rmq_intf Rmq_naive Rmq_sparse Rmq_succinct
