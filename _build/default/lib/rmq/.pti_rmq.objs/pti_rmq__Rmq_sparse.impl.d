lib/rmq/rmq_sparse.ml: Array Printf Stdlib
