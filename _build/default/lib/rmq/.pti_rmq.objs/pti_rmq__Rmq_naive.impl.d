lib/rmq/rmq_naive.ml: Array Printf
