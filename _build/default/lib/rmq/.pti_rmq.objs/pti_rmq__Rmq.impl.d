lib/rmq/rmq.ml: Rmq_naive Rmq_sparse Rmq_succinct
