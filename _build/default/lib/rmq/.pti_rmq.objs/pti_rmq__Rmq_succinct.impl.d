lib/rmq/rmq_succinct.ml: Array Bytes Char Hashtbl Printf Rmq_sparse Stdlib
