type kind = Naive | Sparse | Succinct

let kind_of_string = function
  | "naive" -> Some Naive
  | "sparse" -> Some Sparse
  | "succinct" -> Some Succinct
  | _ -> None

let kind_to_string = function
  | Naive -> "naive"
  | Sparse -> "sparse"
  | Succinct -> "succinct"

let all_kinds = [ Naive; Sparse; Succinct ]

type t =
  | N of Rmq_naive.t
  | Sp of Rmq_sparse.t
  | Su of Rmq_succinct.t

let build kind a =
  match kind with
  | Naive -> N (Rmq_naive.build a)
  | Sparse -> Sp (Rmq_sparse.build a)
  | Succinct -> Su (Rmq_succinct.build a)

let build_oracle kind ~value ~len =
  match kind with
  | Naive -> N (Rmq_naive.build_oracle ~value ~len)
  | Sparse -> Sp (Rmq_sparse.build_oracle ~value ~len)
  | Succinct -> Su (Rmq_succinct.build_oracle ~value ~len)

let length = function
  | N t -> Rmq_naive.length t
  | Sp t -> Rmq_sparse.length t
  | Su t -> Rmq_succinct.length t

let query t ~l ~r =
  match t with
  | N t -> Rmq_naive.query t ~l ~r
  | Sp t -> Rmq_sparse.query t ~l ~r
  | Su t -> Rmq_succinct.query t ~l ~r

let size_words = function
  | N t -> Rmq_naive.size_words t
  | Sp t -> Rmq_sparse.size_words t
  | Su t -> Rmq_succinct.size_words t

module Naive_impl = Rmq_naive
module Sparse_impl = Rmq_sparse
module Succinct_impl = Rmq_succinct
