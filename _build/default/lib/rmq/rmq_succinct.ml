(** Fischer–Heun style block-decomposition RMQ (the practical form of the
    2n + o(n) bit structure of Lemma 1 in the paper).

    The array is cut into blocks of ~(log n)/2 elements. Each block is
    summarised by the push/pop signature of its (max-)Cartesian tree; all
    blocks sharing a signature share one in-block argmax lookup table, so
    in-block queries never touch the values. Across blocks, the per-block
    argmax positions are themselves indexed by a recursive instance
    (falling back to a sparse table once small enough), so total space is
    O(n) words with tiny constants. The value oracle is consulted only to
    merge the at most three candidate positions of a query. *)

type top = Sparse of Rmq_sparse.t | Recurse of t

and t = {
  value : int -> float;
  len : int;
  block : int; (* block size *)
  signatures : int array; (* per block: Cartesian-tree signature *)
  tables : (int * int, Bytes.t) Hashtbl.t;
  (* (block_len, signature) -> argmax matrix; entry l*block+r = in-block
     argmax of [l, r] *)
  top : top; (* RMQ over per-block argmax positions *)
  block_argmax : int array; (* global position of each block's leftmost max *)
}

let floor_log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* Push/pop encoding of the max-Cartesian tree of [value base .. value
   (base+len-1)]: strictly smaller stack tops are popped, so equal values
   keep the leftmost element as ancestor, matching the leftmost-max rule. *)
let signature value base len =
  let stack = Array.make len 0.0 in
  let sp = ref 0 in
  let bits = ref 0 in
  let nbits = ref 0 in
  for i = 0 to len - 1 do
    let v = value (base + i) in
    while !sp > 0 && stack.(!sp - 1) < v do
      decr sp;
      incr nbits (* emit 0 *)
    done;
    stack.(!sp) <- v;
    incr sp;
    bits := !bits lor (1 lsl !nbits);
    incr nbits
  done;
  !bits

(* In-block argmax table computed once per distinct (len, signature) from
   a witness block; valid for every block with the same signature because
   argmax positions depend only on the Cartesian tree shape. *)
let make_table value base len block =
  let tbl = Bytes.make (block * block) '\000' in
  for l = 0 to len - 1 do
    let best = ref l in
    let best_v = ref (value (base + l)) in
    Bytes.set tbl ((l * block) + l) (Char.chr l);
    for r = l + 1 to len - 1 do
      let v = value (base + r) in
      if v > !best_v then begin
        best := r;
        best_v := v
      end;
      Bytes.set tbl ((l * block) + r) (Char.chr !best)
    done
  done;
  tbl

let sparse_cutoff = 4096

let rec build_oracle ~value ~len =
  let block =
    Stdlib.max 4 (Stdlib.min 15 ((floor_log2 (Stdlib.max 2 len) + 1) / 2 + 2))
  in
  let nblocks = if len = 0 then 0 else (len + block - 1) / block in
  let signatures = Array.make nblocks 0 in
  let block_argmax = Array.make nblocks 0 in
  let tables = Hashtbl.create 64 in
  for b = 0 to nblocks - 1 do
    let base = b * block in
    let blen = Stdlib.min block (len - base) in
    let s = signature value base blen in
    signatures.(b) <- s;
    let key = (blen, s) in
    if not (Hashtbl.mem tables key) then
      Hashtbl.replace tables key (make_table value base blen block);
    let tbl = Hashtbl.find tables key in
    let local = Char.code (Bytes.get tbl (0 + (blen - 1))) in
    block_argmax.(b) <- base + local
  done;
  let top_value b = value block_argmax.(b) in
  let top =
    if nblocks <= sparse_cutoff then
      Sparse (Rmq_sparse.build_oracle ~value:top_value ~len:nblocks)
    else Recurse (build_oracle ~value:top_value ~len:nblocks)
  in
  { value; len; block; signatures; tables; top; block_argmax }

let build a =
  let a = Array.copy a in
  build_oracle ~value:(fun i -> a.(i)) ~len:(Array.length a)

let length t = t.len

let in_block t b l r =
  (* l, r are in-block offsets within block b; returns global argmax pos *)
  let base = b * t.block in
  let blen = Stdlib.min t.block (t.len - base) in
  let tbl = Hashtbl.find t.tables (blen, t.signatures.(b)) in
  base + Char.code (Bytes.get tbl ((l * t.block) + r))

let rec query t ~l ~r =
  if l < 0 || r >= t.len || l > r then
    invalid_arg
      (Printf.sprintf "Rmq_succinct.query: [%d,%d] not in [0,%d)" l r t.len);
  let bl = l / t.block and br = r / t.block in
  if bl = br then in_block t bl (l mod t.block) (r mod t.block)
  else begin
    let left = in_block t bl (l mod t.block) (t.block - 1) in
    let right = in_block t br 0 (r mod t.block) in
    let pick a b =
      let va = t.value a and vb = t.value b in
      if vb > va then b else if va > vb then a else Stdlib.min a b
    in
    let best = pick left right in
    if br - bl >= 2 then begin
      let mid_block =
        match t.top with
        | Sparse s -> Rmq_sparse.query s ~l:(bl + 1) ~r:(br - 1)
        | Recurse s -> query s ~l:(bl + 1) ~r:(br - 1)
      in
      pick best t.block_argmax.(mid_block)
    end
    else best
  end

let rec size_words t =
  let table_words =
    Hashtbl.fold
      (fun _ bytes acc -> acc + (Bytes.length bytes / 8) + 1)
      t.tables 0
  in
  let top_words =
    match t.top with
    | Sparse s -> Rmq_sparse.size_words s
    | Recurse s -> size_words s
  in
  Array.length t.signatures + Array.length t.block_argmax + top_words
  + table_words + 4
