lib/succinct/wavelet.mli:
