lib/succinct/bitvec.mli:
