lib/succinct/bitvec.ml: Array Stdlib
