lib/succinct/fm_index.mli:
