lib/succinct/wavelet.ml: Array Bitvec List Printf Stdlib
