lib/succinct/fm_index.ml: Array Pti_suffix Stdlib Wavelet
