(** FM-index: backward pattern search over the Burrows–Wheeler
    transform, with the wavelet tree providing rank.

    Stand-in for the compressed suffix array the paper uses for the
    pattern → suffix-range step in §8.7 (Belazzougui–Navarro): counting
    and range queries in O(m log σ) without touching the text,
    n·log σ + o(n log σ) bits of payload. Suffix ranges are reported in
    the coordinates of the plain suffix array of the text (as produced
    by {!Pti_suffix.Sais.suffix_array}), so results are interchangeable
    with {!Pti_suffix.Sa_search}. *)

type t

val create : ?sa:int array -> int array -> t
(** [create text] builds the BWT (via SA-IS unless [sa] — the suffix
    array of [text] — is supplied) and its wavelet tree. Symbols must be
    ≥ 1. *)

val length : t -> int

val range : t -> pattern:int array -> (int * int) option
(** Suffix range of the pattern, inclusive, in plain-SA coordinates;
    [None] if absent. The empty pattern matches everywhere. *)

val count : t -> pattern:int array -> int
val size_words : t -> int
