(** Pointerless (levelwise) wavelet tree over an integer sequence.

    Supports O(log σ) [access], [rank] and [select], the machinery
    behind FM-index backward search. Symbols must lie in [0, σ). Space:
    ~2·n·⌈log₂ σ⌉ bits plus per-level counters. *)

type t

val build : sigma:int -> int array -> t
(** Raises [Invalid_argument] on a symbol outside [0, sigma). *)

val length : t -> int
val sigma : t -> int

val access : t -> int -> int
(** The symbol at a position. O(log σ). *)

val rank : t -> sym:int -> int -> int
(** [rank t ~sym i] = occurrences of [sym] in positions [0 .. i-1].
    O(log σ). *)

val select : t -> sym:int -> int -> int
(** [select t ~sym k] = position of the k-th occurrence (1-indexed).
    Raises [Invalid_argument] if there are fewer than [k]. O(log² σ·n)
    flavour (per-level select). *)

val count : t -> sym:int -> int
val size_words : t -> int
