type t = {
  n : int;
  sigma : int;
  nlevels : int;
  levels : Bitvec.t array; (* levels.(k): bit (nlevels-1-k) of each symbol *)
}

let ceil_log2 v =
  let rec go acc x = if x >= v then acc else go (acc + 1) (2 * x) in
  go 0 1

let build ~sigma seq =
  if sigma < 1 then invalid_arg "Wavelet.build: sigma < 1";
  Array.iter
    (fun s ->
      if s < 0 || s >= sigma then
        invalid_arg (Printf.sprintf "Wavelet.build: symbol %d not in [0,%d)" s sigma))
    seq;
  let n = Array.length seq in
  let nlevels = Stdlib.max 1 (ceil_log2 sigma) in
  let bits = Array.init nlevels (fun _ -> Array.make n false) in
  (* recursive stable partition per node; [arr] holds this node's
     symbols, written at absolute offset [st] *)
  let rec fill level st arr =
    if level < nlevels && Array.length arr > 0 then begin
      let shift = nlevels - 1 - level in
      let zeros = ref [] and ones = ref [] in
      Array.iteri
        (fun idx sym ->
          if (sym lsr shift) land 1 = 1 then begin
            bits.(level).(st + idx) <- true;
            ones := sym :: !ones
          end
          else zeros := sym :: !zeros)
        arr;
      let zeros = Array.of_list (List.rev !zeros) in
      let ones = Array.of_list (List.rev !ones) in
      fill (level + 1) st zeros;
      fill (level + 1) (st + Array.length zeros) ones
    end
  in
  fill 0 0 (Array.copy seq);
  { n; sigma; nlevels; levels = Array.map Bitvec.of_bools bits }

let length t = t.n
let sigma t = t.sigma

let access t i =
  if i < 0 || i >= t.n then invalid_arg "Wavelet.access: out of range";
  let st = ref 0 and en = ref t.n and p = ref i and sym = ref 0 in
  for level = 0 to t.nlevels - 1 do
    let lvl = t.levels.(level) in
    let ones_node = Bitvec.rank1 lvl !en - Bitvec.rank1 lvl !st in
    let z = !en - !st - ones_node in
    let ones_to_p = Bitvec.rank1 lvl !p - Bitvec.rank1 lvl !st in
    if Bitvec.get lvl !p then begin
      sym := (!sym lsl 1) lor 1;
      p := !st + z + ones_to_p;
      st := !st + z
    end
    else begin
      sym := !sym lsl 1;
      p := !st + (!p - !st - ones_to_p);
      en := !st + z
    end
  done;
  !sym

let rank t ~sym i =
  if i < 0 || i > t.n then invalid_arg "Wavelet.rank: out of range";
  if sym < 0 || sym >= t.sigma then 0
  else begin
    let st = ref 0 and en = ref t.n and p = ref i in
    (try
       for level = 0 to t.nlevels - 1 do
         let lvl = t.levels.(level) in
         let ones_node = Bitvec.rank1 lvl !en - Bitvec.rank1 lvl !st in
         let z = !en - !st - ones_node in
         let ones_to_p = Bitvec.rank1 lvl !p - Bitvec.rank1 lvl !st in
         if (sym lsr (t.nlevels - 1 - level)) land 1 = 1 then begin
           p := !st + z + ones_to_p;
           st := !st + z
         end
         else begin
           p := !st + (!p - !st - ones_to_p);
           en := !st + z
         end;
         if !st >= !en then raise Exit
       done
     with Exit -> ());
    !p - !st
  end

let count t ~sym = rank t ~sym t.n

let select t ~sym k =
  if k < 1 then invalid_arg "Wavelet.select: k < 1";
  if sym < 0 || sym >= t.sigma || count t ~sym < k then
    invalid_arg "Wavelet.select: not enough occurrences";
  (* descend recording each level's node start and branch bit *)
  let path = Array.make t.nlevels (0, false) in
  let st = ref 0 and en = ref t.n in
  for level = 0 to t.nlevels - 1 do
    let lvl = t.levels.(level) in
    let ones_node = Bitvec.rank1 lvl !en - Bitvec.rank1 lvl !st in
    let z = !en - !st - ones_node in
    let bit = (sym lsr (t.nlevels - 1 - level)) land 1 = 1 in
    path.(level) <- (!st, bit);
    if bit then st := !st + z else en := !st + z
  done;
  (* ascend: convert the (k-1)-th leaf offset into parent offsets *)
  let off = ref (k - 1) in
  for level = t.nlevels - 1 downto 0 do
    let lvl = t.levels.(level) in
    let node_st, bit = path.(level) in
    let abs =
      if bit then Bitvec.select1 lvl (Bitvec.rank1 lvl node_st + !off + 1)
      else Bitvec.select0 lvl (Bitvec.rank0 lvl node_st + !off + 1)
    in
    off := abs - node_st
  done;
  !off

let size_words t =
  Array.fold_left (fun acc b -> acc + Bitvec.size_words b) 4 t.levels
