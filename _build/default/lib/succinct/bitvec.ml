let bits_per_word = 63

type t = {
  len : int;
  words : int array; (* 63 bits per entry *)
  cum : int array; (* cum.(w) = number of set bits in words 0 .. w-1 *)
}

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let create len f =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  let nwords = (len + bits_per_word - 1) / bits_per_word in
  let words = Array.make (Stdlib.max 1 nwords) 0 in
  for i = 0 to len - 1 do
    if f i then begin
      let w = i / bits_per_word and b = i mod bits_per_word in
      words.(w) <- words.(w) lor (1 lsl b)
    end
  done;
  let cum = Array.make (Array.length words + 1) 0 in
  Array.iteri (fun w x -> cum.(w + 1) <- cum.(w) + popcount x) words;
  { len; words; cum }

let of_bools a = create (Array.length a) (fun i -> a.(i))

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.get: out of range";
  (t.words.(i / bits_per_word) lsr (i mod bits_per_word)) land 1 = 1

let rank1 t i =
  if i < 0 || i > t.len then invalid_arg "Bitvec.rank1: out of range";
  let w = i / bits_per_word and b = i mod bits_per_word in
  let partial =
    if b = 0 then 0 else popcount (t.words.(w) land ((1 lsl b) - 1))
  in
  t.cum.(w) + partial

let rank0 t i = i - rank1 t i
let count1 t = rank1 t t.len

(* Smallest i with rank (i+1) = k, by binary search over the cumulative
   word ranks then a word scan. [rank_word w] must be the number of
   qualifying bits strictly before word w. *)
let select_gen t k qualifying rank_before =
  if k < 1 then invalid_arg "Bitvec.select: k < 1";
  let nwords = Array.length t.words in
  (* binary search for the word containing the k-th qualifying bit *)
  let lo = ref 0 and hi = ref nwords in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if rank_before (mid + 1) < k then lo := mid + 1 else hi := mid
  done;
  let w = !lo in
  if w >= nwords then invalid_arg "Bitvec.select: not enough bits";
  let need = k - rank_before w in
  let seen = ref 0 in
  let res = ref (-1) in
  let base = w * bits_per_word in
  let limit = Stdlib.min bits_per_word (t.len - base) in
  (try
     for b = 0 to limit - 1 do
       if qualifying ((t.words.(w) lsr b) land 1 = 1) then begin
         incr seen;
         if !seen = need then begin
           res := base + b;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if !res < 0 then invalid_arg "Bitvec.select: not enough bits";
  !res

let select1 t k = select_gen t k (fun bit -> bit) (fun w -> t.cum.(w))

let select0 t k =
  (* clamp to [len]: padding bits of the final word are not zeros *)
  select_gen t k
    (fun bit -> not bit)
    (fun w -> Stdlib.min (w * bits_per_word) t.len - t.cum.(w))

let size_words t = Array.length t.words + Array.length t.cum + 2
