(* The BWT is taken over text·$ where $ = 0 is the unique smallest
   sentinel; the suffix array with the sentinel is the plain suffix
   array shifted by one slot (the sentinel suffix sorts first and the
   relative order of real suffixes is unchanged), so ranges convert by
   subtracting 1. *)

type t = {
  n : int; (* length of the original text *)
  wt : Wavelet.t; (* wavelet tree of the BWT (length n + 1) *)
  c : int array; (* c.(s) = number of BWT symbols < s *)
}

let create ?sa text =
  let n = Array.length text in
  Array.iter
    (fun s -> if s < 1 then invalid_arg "Fm_index.create: symbol < 1")
    text;
  let sa = match sa with Some sa -> sa | None -> Pti_suffix.Sais.suffix_array text in
  if Array.length sa <> n then invalid_arg "Fm_index.create: bad suffix array";
  let maxc = Array.fold_left Stdlib.max 0 text in
  (* bwt.(0) corresponds to the sentinel suffix (text position n): its
     predecessor is text.(n-1); bwt.(i+1) = predecessor of suffix sa.(i),
     the sentinel 0 when sa.(i) = 0. *)
  let bwt = Array.make (n + 1) 0 in
  if n > 0 then bwt.(0) <- text.(n - 1);
  for i = 0 to n - 1 do
    bwt.(i + 1) <- (if sa.(i) = 0 then 0 else text.(sa.(i) - 1))
  done;
  let counts = Array.make (maxc + 2) 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) bwt;
  let c = Array.make (maxc + 2) 0 in
  for s = 1 to maxc + 1 do
    c.(s) <- c.(s - 1) + counts.(s - 1)
  done;
  { n; wt = Wavelet.build ~sigma:(maxc + 1) bwt; c }

let length t = t.n

let range t ~pattern =
  let m = Array.length pattern in
  if t.n = 0 then None
  else if m = 0 then Some (0, t.n - 1)
  else begin
    (* backward search over the sentinel-inclusive coordinate space
       [0, n]; start from the last pattern symbol *)
    let rec go k sp ep =
      if sp > ep || k < 0 then (sp, ep)
      else begin
        let s = pattern.(k) in
        if s >= Wavelet.sigma t.wt || s < 1 then (1, 0)
        else begin
          let sp' = t.c.(s) + Wavelet.rank t.wt ~sym:s sp in
          let ep' = t.c.(s) + Wavelet.rank t.wt ~sym:s (ep + 1) - 1 in
          go (k - 1) sp' ep'
        end
      end
    in
    let sp, ep = go (m - 1) 0 t.n in
    if sp > ep then None
    else
      (* drop the sentinel coordinate: plain-SA slot = slot - 1 (the
         sentinel suffix occupies slot 0 and never matches a pattern) *)
      Some (sp - 1, ep - 1)
  end

let count t ~pattern =
  match range t ~pattern with None -> 0 | Some (sp, ep) -> ep - sp + 1

let size_words t = Wavelet.size_words t.wt + Array.length t.c + 2
