(* Tests for Pti_transform: the general→special transformation must
   conserve every substring whose probability reaches τ_min (Lemma 2),
   map positions faithfully, reproduce exact probabilities, and collapse
   to linear size on deterministic inputs. *)

module U = Pti_ustring.Ustring
module Sym = Pti_ustring.Sym
module Worlds = Pti_ustring.Worlds
module Oracle = Pti_ustring.Oracle
module Logp = Pti_prob.Logp
module T = Pti_transform.Transform
module H = Pti_test_helpers

(* Does [w] occur in the transform at a text position mapped to original
   position [i]? Returns the text position if so. *)
let find_occurrence tr ~w ~i =
  let text = T.text tr and pos = T.pos tr in
  let len = Array.length w in
  let n = Array.length text in
  let rec go a =
    if a + len > n then None
    else if pos.(a) = i && Array.sub text a len = w then Some a
    else go (a + 1)
  in
  go 0

let check_conservation u tau_min =
  let tr = T.build ~tau_min u in
  let n = U.length u in
  let tau = Logp.of_prob tau_min in
  for i = 0 to n - 1 do
    for len = 1 to n - i do
      List.iter
        (fun (w, p) ->
          match find_occurrence tr ~w ~i with
          | None ->
              Alcotest.failf "missing: %s at %d (prob %s, tau_min %g)"
                (Sym.to_string w) i (Logp.to_string p) tau_min
          | Some a ->
              let got = T.window_logp_corrected tr ~pos:a ~len in
              let want = Oracle.occurrence_logp u ~pattern:w ~pos:i in
              if not (Logp.approx_equal ~eps:1e-9 got want) then
                Alcotest.failf "probability mismatch at %d: %s vs %s" i
                  (Logp.to_string got) (Logp.to_string want))
        (Worlds.matched_strings_at u ~pos:i ~len ~tau)
    done
  done;
  tr

let test_conservation_random () =
  let rng = H.rng_of_seed 41 in
  for _ = 1 to 120 do
    let n = 1 + Random.State.int rng 20 in
    let u = H.random_ustring rng n 4 3 in
    let tau_min = 0.05 +. Random.State.float rng 0.35 in
    ignore (check_conservation u tau_min)
  done

let test_conservation_correlated () =
  let rng = H.rng_of_seed 42 in
  for _ = 1 to 60 do
    let n = 3 + Random.State.int rng 12 in
    let u = H.random_ustring rng n 3 3 in
    let u = Pti_workload.Dataset.add_random_correlations rng u ~count:2 in
    let tau_min = 0.05 +. Random.State.float rng 0.3 in
    ignore (check_conservation u tau_min)
  done

let test_deterministic_collapses () =
  (* A deterministic string of length n must transform to n + 1 text
     positions (one factor + separator), not Θ(n²). *)
  let u = U.of_string (String.make 200 'A' ^ String.concat "" (List.init 100 (fun i -> String.make 1 (Char.chr (65 + (i mod 20)))))) in
  let tr = T.build ~tau_min:0.5 u in
  Alcotest.(check int) "one factor" 1 (T.n_factors tr);
  Alcotest.(check int) "linear text" (U.length u + 1) (T.text_length tr)

let test_pos_structure () =
  let rng = H.rng_of_seed 43 in
  for _ = 1 to 50 do
    let u = H.random_ustring rng (2 + Random.State.int rng 15) 3 3 in
    let tr = T.build ~tau_min:0.2 u in
    let text = T.text tr and pos = T.pos tr in
    let n = Array.length text in
    (* separators carry pos -1, factors carry consecutive positions, and
       the text ends with a separator *)
    Alcotest.(check int) "ends with separator" Sym.separator text.(n - 1);
    for a = 0 to n - 1 do
      if Sym.is_separator text.(a) then
        Alcotest.(check int) "separator pos" (-1) pos.(a)
      else begin
        Alcotest.(check bool) "pos in range" true
          (pos.(a) >= 0 && pos.(a) < U.length u);
        if a + 1 < n && not (Sym.is_separator text.(a + 1)) then
          Alcotest.(check int) "consecutive" (pos.(a) + 1) pos.(a + 1);
        (* the emitted symbol must be a choice at that position *)
        Alcotest.(check bool) "symbol is a choice" true
          (U.prob u ~pos:pos.(a) ~sym:text.(a) > 0.0)
      end
    done
  done

let test_factor_probability_floor () =
  (* every emitted factor has (upper-bound) probability >= tau_min: in
     the absence of correlations the marginal window of each full factor
     reaches tau_min *)
  let rng = H.rng_of_seed 44 in
  for _ = 1 to 50 do
    let u = H.random_ustring rng (2 + Random.State.int rng 15) 3 3 in
    let tau_min = 0.1 +. Random.State.float rng 0.3 in
    let tr = T.build ~tau_min u in
    let text = T.text tr in
    let n = Array.length text in
    let a = ref 0 in
    while !a < n do
      if not (Sym.is_separator text.(!a)) then begin
        let b = ref !a in
        while not (Sym.is_separator text.(!b)) do
          incr b
        done;
        let w = T.window_logp tr ~pos:!a ~len:(!b - !a) in
        if Logp.to_prob w < tau_min -. 1e-9 then
          Alcotest.failf "factor below tau_min: %s < %g" (Logp.to_string w)
            tau_min;
        a := !b
      end
      else incr a
    done
  done

let test_identity () =
  let special = U.parse "A:.4 B:.7 C:.5 D" in
  let tr = T.identity special in
  Alcotest.(check int) "text = positions" 4 (T.text_length tr);
  Alcotest.(check (float 1e-12)) "tau_min 0" 0.0 (T.tau_min tr);
  Alcotest.(check int) "pos identity" 2 (T.original_pos tr 2);
  Alcotest.(check (float 1e-9)) "window" (0.7 *. 0.5)
    (Logp.to_prob (T.window_logp tr ~pos:1 ~len:2));
  Alcotest.(check bool) "general rejected" true
    (try
       ignore (T.identity (U.parse "A:.5,B:.5"));
       false
     with Invalid_argument _ -> true)

let test_bad_args () =
  let u = U.parse "A:.5,B:.5" in
  List.iter
    (fun tau ->
      Alcotest.(check bool)
        (Printf.sprintf "tau_min %g rejected" tau)
        true
        (try
           ignore (T.build ~tau_min:tau u);
           false
         with Invalid_argument _ -> true))
    [ 0.0; -0.5; 1.5 ];
  Alcotest.(check bool) "max_text_len enforced" true
    (try
       ignore
         (T.build ~max_text_len:3
            ~tau_min:0.01
            (H.random_ustring (H.rng_of_seed 9) 10 4 3));
       false
     with Failure _ -> true)

let test_blowup_bounded () =
  (* text length stays within the theoretical O((1/τ_min)² n) bound on
     workload-like inputs (and far below it in practice) *)
  let u = Pti_workload.Dataset.single (Pti_workload.Dataset.default ~total:2000 ~theta:0.3) in
  let tau_min = 0.1 in
  let tr = T.build ~tau_min u in
  let bound = int_of_float ((1.0 /. tau_min) ** 2.0) * (U.length u + 1) in
  Alcotest.(check bool)
    (Printf.sprintf "text %d within bound %d" (T.text_length tr) bound)
    true
    (T.text_length tr <= bound)

let test_running_example_appendix_b () =
  (* Appendix B's string: S[1]={Q .7, S .3}, S[2]={Q .3, P .7}, S[3]={P 1},
     S[4]={A .4, F .3, P .2, Q .1}. With τ_min = 0.1, every substring with
     probability ≥ .1 must be conserved; e.g. "QPPA" at 0 (prob .196),
     "QQP" at 0 (prob .21), "PA" at 2 (prob .4). *)
  let s = U.parse "Q:.7,S:.3 Q:.3,P:.7 P A:.4,F:.3,P:.2,Q:.1" in
  let tr = T.build ~tau_min:0.1 s in
  List.iter
    (fun (w, i, p) ->
      match find_occurrence tr ~w:(Sym.of_string w) ~i with
      | None -> Alcotest.failf "missing %s at %d" w i
      | Some a ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "prob of %s" w)
            p
            (Logp.to_prob
               (T.window_logp_corrected tr ~pos:a ~len:(String.length w))))
    [
      ("QPPA", 0, 0.7 *. 0.7 *. 1.0 *. 0.4);
      ("QQP", 0, 0.7 *. 0.3 *. 1.0);
      ("QPPF", 0, 0.7 *. 0.7 *. 1.0 *. 0.3);
      ("PA", 2, 1.0 *. 0.4);
      ("PPA", 1, 0.7 *. 1.0 *. 0.4);
    ]

let prop_conservation =
  QCheck2.Test.make ~name:"lemma 2 substring conservation (qcheck)" ~count:60
    QCheck2.Gen.(
      let* seed = int_range 0 100000 in
      let* n = int_range 1 12 in
      let* tau = float_range 0.05 0.4 in
      return (seed, n, tau))
    (fun (seed, n, tau_min) ->
      let u = H.random_ustring (H.rng_of_seed seed) n 3 3 in
      try
        ignore (check_conservation u tau_min);
        true
      with _ -> false)

let () =
  Alcotest.run "pti_transform"
    [
      ( "conservation",
        [
          Alcotest.test_case "random strings" `Quick test_conservation_random;
          Alcotest.test_case "with correlations" `Quick test_conservation_correlated;
          Alcotest.test_case "appendix B example" `Quick test_running_example_appendix_b;
          QCheck_alcotest.to_alcotest prop_conservation;
        ] );
      ( "structure",
        [
          Alcotest.test_case "deterministic collapses" `Quick test_deterministic_collapses;
          Alcotest.test_case "pos array structure" `Quick test_pos_structure;
          Alcotest.test_case "factors reach tau_min" `Quick test_factor_probability_floor;
          Alcotest.test_case "blowup bounded" `Slow test_blowup_bounded;
        ] );
      ( "api",
        [
          Alcotest.test_case "identity transform" `Quick test_identity;
          Alcotest.test_case "argument validation" `Quick test_bad_args;
        ] );
    ]
