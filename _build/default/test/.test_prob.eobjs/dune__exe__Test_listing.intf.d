test/test_listing.mli:
