test/test_rmq.mli:
