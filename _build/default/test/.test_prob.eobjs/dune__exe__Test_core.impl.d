test/test_core.ml: Alcotest Array Char Filename Float Fun List Printf Pti_core Pti_prob Pti_rmq Pti_test_helpers Pti_ustring Pti_workload QCheck2 QCheck_alcotest Random Seq String Sys
