test/test_ustring.ml: Alcotest Array Float List Printf Pti_prob Pti_test_helpers Pti_ustring QCheck2 QCheck_alcotest Random
