test/test_transform.ml: Alcotest Array Char List Printf Pti_prob Pti_test_helpers Pti_transform Pti_ustring Pti_workload QCheck2 QCheck_alcotest Random String
