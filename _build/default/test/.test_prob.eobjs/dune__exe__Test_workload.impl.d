test/test_workload.ml: Alcotest Array Float Hashtbl List Printf Pti_prob Pti_test_helpers Pti_ustring Pti_workload String
