test/test_suffix.mli:
