test/test_rmq.ml: Alcotest Array List Printf Pti_rmq QCheck2 QCheck_alcotest Random
