test/test_succinct.ml: Alcotest Array Char List Pti_core Pti_succinct Pti_suffix Pti_test_helpers QCheck2 QCheck_alcotest Random String
