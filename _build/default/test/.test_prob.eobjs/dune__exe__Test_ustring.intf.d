test/test_ustring.mli:
