test/test_prob.ml: Alcotest Array Float List Printf Pti_prob Pti_test_helpers QCheck2 QCheck_alcotest
