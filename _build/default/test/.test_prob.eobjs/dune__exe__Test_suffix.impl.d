test/test_suffix.ml: Alcotest Array Char List Printf Pti_suffix QCheck2 QCheck_alcotest Random Stdlib String
