test/test_succinct.mli:
