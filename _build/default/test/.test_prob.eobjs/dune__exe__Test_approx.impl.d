test/test_approx.ml: Alcotest Array Char List Printf Pti_core Pti_prob Pti_test_helpers Pti_ustring Pti_workload QCheck2 QCheck_alcotest Random String
