test/test_integration.ml: Alcotest Array Char List Pti_core Pti_prob Pti_test_helpers Pti_ustring Pti_workload Random
