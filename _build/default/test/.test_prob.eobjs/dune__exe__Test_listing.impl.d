test/test_listing.ml: Alcotest Array Float List Pti_core Pti_prob Pti_test_helpers Pti_ustring QCheck2 QCheck_alcotest Random
