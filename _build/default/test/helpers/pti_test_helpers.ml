(** Shared generators and helpers for the test suites. *)

module U = Pti_ustring.Ustring
module Sym = Pti_ustring.Sym
module Logp = Pti_prob.Logp

let rng_of_seed seed = Random.State.make [| seed |]

(* A random uncertain string: [n] positions, alphabet of [k] letters
   starting at 'A', at most [maxc] choices per position, probabilities
   normalised to sum to 1. *)
let random_ustring rng n k maxc =
  Array.init n (fun _ ->
      let c = 1 + Random.State.int rng maxc in
      let syms = ref [] in
      while List.length !syms < c do
        let s = Char.code 'A' + Random.State.int rng k in
        if not (List.mem s !syms) then syms := s :: !syms
      done;
      let raw =
        List.map (fun s -> (s, 0.05 +. Random.State.float rng 1.0)) !syms
      in
      let total = List.fold_left (fun a (_, p) -> a +. p) 0.0 raw in
      Array.of_list
        (List.map (fun (s, p) -> { U.sym = s; prob = p /. total }) raw))
  |> U.make

(* A pattern drawn from one possible world of positions [i, i+m). *)
let pattern_at rng u ~start ~m =
  Array.init m (fun o ->
      let cs = U.choices u (start + o) in
      cs.(Random.State.int rng (Array.length cs)).sym)

let random_pattern rng u maxm =
  let n = U.length u in
  let m = 1 + Random.State.int rng (Stdlib.min n maxm) in
  let start = Random.State.int rng (n - m + 1) in
  pattern_at rng u ~start ~m

(* A pattern that likely does NOT occur: random letters. *)
let random_letters rng k m =
  Array.init m (fun _ -> Char.code 'A' + Random.State.int rng k)

let sorted_fst l = List.sort compare (List.map fst l)

let check_sorted_desc name l =
  let rec go = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        if Logp.(a < b) then
          Alcotest.failf "%s: results not in non-increasing order" name;
        go rest
    | _ -> ()
  in
  go l

(* QCheck generator wrapping [random_ustring]. *)
let gen_ustring ?(max_n = 30) ?(k = 4) ?(maxc = 3) () =
  let open QCheck2.Gen in
  let* seed = int_range 0 1_000_000 in
  let* n = int_range 1 max_n in
  return (random_ustring (rng_of_seed seed) n k maxc)

let logp_testable =
  Alcotest.testable
    (fun ppf l -> Format.fprintf ppf "%s" (Logp.to_string l))
    (fun a b -> Logp.approx_equal ~eps:1e-9 a b)
