(* Tests for Pti_succinct: bit vector rank/select, wavelet tree, and the
   FM-index (which must agree with suffix-array binary search on every
   pattern). *)

module Bv = Pti_succinct.Bitvec
module Wt = Pti_succinct.Wavelet
module Fm = Pti_succinct.Fm_index
module Sais = Pti_suffix.Sais
module Sa_search = Pti_suffix.Sa_search
module H = Pti_test_helpers

let test_bitvec_exhaustive () =
  let rng = H.rng_of_seed 111 in
  for _ = 1 to 100 do
    let n = Random.State.int rng 300 in
    let bools = Array.init n (fun _ -> Random.State.bool rng) in
    let bv = Bv.of_bools bools in
    Alcotest.(check int) "length" n (Bv.length bv);
    let r1 = ref 0 in
    for i = 0 to n do
      Alcotest.(check int) "rank1" !r1 (Bv.rank1 bv i);
      Alcotest.(check int) "rank0" (i - !r1) (Bv.rank0 bv i);
      if i < n then begin
        Alcotest.(check bool) "get" bools.(i) (Bv.get bv i);
        if bools.(i) then incr r1
      end
    done;
    Alcotest.(check int) "count1" !r1 (Bv.count1 bv);
    let ones = ref 0 and zeros = ref 0 in
    Array.iteri
      (fun i b ->
        if b then begin
          incr ones;
          Alcotest.(check int) "select1" i (Bv.select1 bv !ones)
        end
        else begin
          incr zeros;
          Alcotest.(check int) "select0" i (Bv.select0 bv !zeros)
        end)
      bools
  done

let test_bitvec_edges () =
  let bv = Bv.of_bools [||] in
  Alcotest.(check int) "empty rank" 0 (Bv.rank1 bv 0);
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "select on empty" true (raises (fun () -> ignore (Bv.select1 bv 1)));
  let all1 = Bv.create 130 (fun _ -> true) in
  Alcotest.(check int) "all ones rank" 130 (Bv.rank1 all1 130);
  Alcotest.(check int) "all ones select" 129 (Bv.select1 all1 130);
  Alcotest.(check bool) "select0 none" true (raises (fun () -> ignore (Bv.select0 all1 1)));
  (* word-boundary sizes *)
  List.iter
    (fun n ->
      let bv = Bv.create n (fun i -> i mod 2 = 0) in
      Alcotest.(check int) "alternating rank" ((n + 1) / 2) (Bv.rank1 bv n))
    [ 62; 63; 64; 126; 127 ]

let test_wavelet_matches_naive () =
  let rng = H.rng_of_seed 112 in
  for _ = 1 to 60 do
    let n = Random.State.int rng 150 in
    let sigma = 1 + Random.State.int rng 50 in
    let seq = Array.init n (fun _ -> Random.State.int rng sigma) in
    let wt = Wt.build ~sigma seq in
    Alcotest.(check int) "length" n (Wt.length wt);
    for i = 0 to n - 1 do
      Alcotest.(check int) "access" seq.(i) (Wt.access wt i)
    done;
    for sym = 0 to sigma - 1 do
      let cnt = ref 0 in
      for i = 0 to n do
        Alcotest.(check int) "rank" !cnt (Wt.rank wt ~sym i);
        if i < n && seq.(i) = sym then begin
          incr cnt;
          Alcotest.(check int) "select" i (Wt.select wt ~sym !cnt)
        end
      done;
      Alcotest.(check int) "count" !cnt (Wt.count wt ~sym)
    done
  done

let test_wavelet_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "symbol out of range" true
    (raises (fun () -> ignore (Wt.build ~sigma:4 [| 0; 4 |])));
  Alcotest.(check bool) "select too many" true
    (raises (fun () -> ignore (Wt.select (Wt.build ~sigma:2 [| 0; 1 |]) ~sym:0 2)))

let test_fm_matches_binary_search () =
  let rng = H.rng_of_seed 113 in
  for _ = 1 to 150 do
    let n = 1 + Random.State.int rng 120 in
    let k = 1 + Random.State.int rng 5 in
    let text = Array.init n (fun _ -> 1 + Random.State.int rng k) in
    let sa = Sais.suffix_array text in
    let fm = Fm.create ~sa text in
    Alcotest.(check int) "length" n (Fm.length fm);
    for _ = 1 to 25 do
      let m = 1 + Random.State.int rng 8 in
      (* include symbols slightly outside the alphabet *)
      let pat = Array.init m (fun _ -> 1 + Random.State.int rng (k + 1)) in
      Alcotest.(check bool) "range agrees" true
        (Fm.range fm ~pattern:pat = Sa_search.range ~text ~sa ~pattern:pat);
      Alcotest.(check int) "count agrees"
        (Sa_search.count ~text ~sa ~pattern:pat)
        (Fm.count fm ~pattern:pat)
    done;
    Alcotest.(check bool) "empty pattern" true
      (Fm.range fm ~pattern:[||] = Some (0, n - 1))
  done

let test_fm_without_sa () =
  let text = Array.map Char.code (Array.init 11 (String.get "abracadabra")) in
  let fm = Fm.create text in
  Alcotest.(check int) "abra twice" 2 (Fm.count fm ~pattern:(Array.map Char.code [| 'a'; 'b'; 'r'; 'a' |]))

(* The engine produces identical answers with either range-search
   backend (also covered by the config cross-product in test_core). *)
let test_fm_in_engine () =
  let rng = H.rng_of_seed 114 in
  for _ = 1 to 40 do
    let u = H.random_ustring rng (5 + Random.State.int rng 30) 4 3 in
    let binary = Pti_core.General_index.build ~tau_min:0.1 u in
    let fm =
      Pti_core.General_index.build
        ~config:{ Pti_core.Engine.default_config with range_search = Pti_core.Engine.Rs_fm }
        ~tau_min:0.1 u
    in
    let pat = H.random_pattern rng u 8 in
    let tau = 0.1 +. Random.State.float rng 0.6 in
    Alcotest.(check (list int)) "fm = binary"
      (H.sorted_fst (Pti_core.General_index.query binary ~pattern:pat ~tau))
      (H.sorted_fst (Pti_core.General_index.query fm ~pattern:pat ~tau))
  done

let prop_bitvec =
  QCheck2.Test.make ~name:"bitvec rank1 = naive (qcheck)" ~count:300
    QCheck2.Gen.(
      let* n = int_range 0 200 in
      let* bools = array_repeat n bool in
      let* i = int_range 0 n in
      return (bools, i))
    (fun (bools, i) ->
      let want = ref 0 in
      for j = 0 to i - 1 do
        if bools.(j) then incr want
      done;
      Bv.rank1 (Bv.of_bools bools) i = !want)

let () =
  Alcotest.run "pti_succinct"
    [
      ( "bitvec",
        [
          Alcotest.test_case "rank/select vs naive" `Quick test_bitvec_exhaustive;
          Alcotest.test_case "edges" `Quick test_bitvec_edges;
          QCheck_alcotest.to_alcotest prop_bitvec;
        ] );
      ( "wavelet",
        [
          Alcotest.test_case "access/rank/select vs naive" `Quick
            test_wavelet_matches_naive;
          Alcotest.test_case "validation" `Quick test_wavelet_validation;
        ] );
      ( "fm_index",
        [
          Alcotest.test_case "ranges = binary search" `Quick
            test_fm_matches_binary_search;
          Alcotest.test_case "builds own SA" `Quick test_fm_without_sa;
          Alcotest.test_case "engine backend equivalence" `Quick test_fm_in_engine;
        ] );
    ]
