(* Integration tests: the full pipeline (workload → transform → indexes
   → queries) on medium-sized instances, with every index cross-checked
   against the others and against the oracle. *)

module U = Pti_ustring.Ustring
module Sym = Pti_ustring.Sym
module Oracle = Pti_ustring.Oracle
module Logp = Pti_prob.Logp
module D = Pti_workload.Dataset
module Q = Pti_workload.Querygen
module G = Pti_core.General_index
module Si = Pti_core.Simple_index
module A = Pti_core.Approx_index
module L = Pti_core.Listing_index
module H = Pti_test_helpers

let tau_min = 0.1

let test_pipeline_medium () =
  let u = D.single (D.default ~total:2500 ~theta:0.3) in
  let g = G.build ~tau_min u in
  let si = Si.build ~tau_min u in
  let a = A.build ~epsilon:0.05 ~tau_min u in
  let rng = H.rng_of_seed 101 in
  List.iter
    (fun m ->
      List.iter
        (fun pat ->
          List.iter
            (fun tau ->
              let want =
                H.sorted_fst (Oracle.occurrences u ~pattern:pat ~tau:(Logp.of_prob tau))
              in
              let got_g = H.sorted_fst (G.query g ~pattern:pat ~tau) in
              let got_si = H.sorted_fst (Si.query si ~pattern:pat ~tau) in
              Alcotest.(check (list int)) "general = oracle" want got_g;
              Alcotest.(check (list int)) "simple = oracle" want got_si;
              (* approximate: superset of exact, subset of tau - eps *)
              let got_a = H.sorted_fst (A.query a ~pattern:pat ~tau) in
              List.iter
                (fun p ->
                  if not (List.mem p got_a) then
                    Alcotest.failf "approx missed position %d" p)
                want;
              let relaxed =
                H.sorted_fst
                  (Oracle.occurrences u ~pattern:pat
                     ~tau:(Logp.of_prob (tau -. 0.05 -. 1e-9)))
              in
              List.iter
                (fun p ->
                  if not (List.mem p relaxed) then
                    Alcotest.failf "approx over-reported position %d" p)
                got_a)
            (* τ values chosen off the lattice of exact probability
               products: at a colliding τ (e.g. exactly 0.1 when some
               occurrence has probability exactly 0.1) the strict
               comparison is decided by float rounding, which the
               index's prefix sums and the oracle's direct sums may
               round differently. *)
            [ 0.1003; 0.2007; 0.4001 ])
        (Q.patterns rng u ~m ~count:6))
    [ 2; 4; 8; 16 ]

let test_listing_pipeline () =
  let docs = D.collection (D.default ~total:1500 ~theta:0.3) in
  let l = L.build ~tau_min docs in
  let rng = H.rng_of_seed 102 in
  let d0 = List.nth docs (Random.State.int rng (List.length docs)) in
  List.iter
    (fun m ->
      if m <= U.length d0 then
        List.iter
          (fun pat ->
            let tau = 0.15 in
            let want =
              List.concat
                (List.mapi
                   (fun k d ->
                     if Logp.to_prob (Oracle.relevance_max d ~pattern:pat) > tau
                     then [ k ]
                     else [])
                   docs)
            in
            Alcotest.(check (list int)) "listing = per-doc oracle" want
              (H.sorted_fst (L.query l ~pattern:pat ~tau)))
          (Q.patterns rng d0 ~m ~count:5))
    [ 2; 4; 8 ]

(* §2's biological-sequence motivation, end to end on the Figure 3
   string. *)
let test_motivation_example () =
  let s =
    U.parse
      "P S:.7,F:.3 F P Q:.5,T:.5 P A:.4,F:.4,P:.2 I:.3,L:.3,F:.1,T:.3 A \
       S:.5,T:.5 A"
  in
  let g = G.build ~tau_min:0.1 s in
  (* query (AT, 0.4): only position 8 qualifies (1 * .5 = .5); position 6
     has .4 * .3 = .12 *)
  let got = G.query_string g ~pattern:"AT" ~tau:0.4 in
  Alcotest.(check (list int)) "positions" [ 8 ] (List.map fst got);
  Alcotest.(check (float 1e-9)) "probability" 0.5 (Logp.to_prob (snd (List.hd got)));
  Alcotest.(check (list int)) "lower threshold finds both" [ 6; 8 ]
    (H.sorted_fst (G.query_string g ~pattern:"AT" ~tau:0.1));
  (* SFPQ occurs at 1 with .35 *)
  let sfpq = G.query_string g ~pattern:"SFPQ" ~tau:0.3 in
  Alcotest.(check (list int)) "SFPQ" [ 1 ] (List.map fst sfpq)

(* Determinism: building twice yields identical answers, and queries do
   not mutate the index. *)
let test_determinism () =
  let u = D.single (D.default ~total:800 ~theta:0.2) in
  let g1 = G.build ~tau_min u in
  let g2 = G.build ~tau_min u in
  let rng = H.rng_of_seed 103 in
  for _ = 1 to 30 do
    let pat = Q.pattern rng u ~m:(1 + Random.State.int rng 10) in
    let r1 = G.query g1 ~pattern:pat ~tau:0.2 in
    let r2 = G.query g2 ~pattern:pat ~tau:0.2 in
    let r1' = G.query g1 ~pattern:pat ~tau:0.2 in
    Alcotest.(check bool) "same build same answers" true (r1 = r2);
    Alcotest.(check bool) "query idempotent" true (r1 = r1')
  done

(* Raising tau can only shrink the answer set (monotonicity), and every
   answer set is contained in the tau_min answer set. *)
let test_tau_monotonicity () =
  let u = D.single (D.default ~total:600 ~theta:0.4) in
  let g = G.build ~tau_min u in
  let rng = H.rng_of_seed 104 in
  for _ = 1 to 40 do
    let pat = Q.pattern rng u ~m:(1 + Random.State.int rng 6) in
    let taus = [ 0.1; 0.15; 0.25; 0.4; 0.7 ] in
    let results = List.map (fun tau -> H.sorted_fst (G.query g ~pattern:pat ~tau)) taus in
    let rec check = function
      | bigger :: (smaller :: _ as rest) ->
          List.iter
            (fun p ->
              if not (List.mem p bigger) then
                Alcotest.fail "higher tau produced new answer")
            smaller;
          check rest
      | _ -> ()
    in
    check results
  done

(* The special index and the general index agree when the input happens
   to be special. *)
let test_special_general_consistency () =
  let rng = H.rng_of_seed 105 in
  for _ = 1 to 40 do
    let n = 5 + Random.State.int rng 40 in
    let u =
      U.make
        (Array.init n (fun _ ->
             [|
               {
                 U.sym = Char.code 'A' + Random.State.int rng 3;
                 prob = 0.3 +. Random.State.float rng 0.7;
               };
             |]))
    in
    let sp = Pti_core.Special_index.build u in
    let g = G.build ~tau_min:0.1 u in
    let pat = H.random_pattern rng u 8 in
    let tau = 0.1 +. Random.State.float rng 0.6 in
    Alcotest.(check (list int))
      "special = general"
      (H.sorted_fst (Pti_core.Special_index.query sp ~pattern:pat ~tau))
      (H.sorted_fst (G.query g ~pattern:pat ~tau))
  done

let test_correlated_pipeline () =
  let rng = H.rng_of_seed 106 in
  let u = D.single (D.default ~total:400 ~theta:0.4) in
  let u = D.add_random_correlations rng u ~count:20 in
  let g = G.build ~tau_min u in
  for _ = 1 to 50 do
    let pat = Q.pattern rng u ~m:(1 + Random.State.int rng 6) in
    let tau = 0.1 +. Random.State.float rng 0.5 in
    Alcotest.(check (list int))
      "correlated pipeline = oracle"
      (H.sorted_fst (Oracle.occurrences u ~pattern:pat ~tau:(Logp.of_prob tau)))
      (H.sorted_fst (G.query g ~pattern:pat ~tau))
  done

(* Large-scale stress: build at realistic size and spot-check sampled
   queries against the (slow) oracle, exercising every index at once. *)
let test_stress_large () =
  let u = D.single (D.default ~total:30_000 ~theta:0.35) in
  let g = G.build ~tau_min u in
  let a = A.build ~epsilon:0.05 ~tau_min u in
  let docs = D.collection (D.default ~total:10_000 ~theta:0.35) in
  let l = L.build ~tau_min docs in
  let rng = H.rng_of_seed 107 in
  for _ = 1 to 40 do
    let m = 2 + Random.State.int rng 12 in
    let pat = Q.pattern rng u ~m in
    let tau = 0.1 +. Random.State.float rng 0.6 in
    let want =
      H.sorted_fst (Oracle.occurrences u ~pattern:pat ~tau:(Logp.of_prob tau))
    in
    Alcotest.(check (list int)) "stress general = oracle" want
      (H.sorted_fst (G.query g ~pattern:pat ~tau));
    (* approximate superset check *)
    let approx = H.sorted_fst (A.query a ~pattern:pat ~tau) in
    List.iter
      (fun p ->
        if not (List.mem p approx) then
          Alcotest.failf "stress: approx missed %d" p)
      want
  done;
  for _ = 1 to 15 do
    let d0 = List.nth docs (Random.State.int rng (List.length docs)) in
    let pat = Q.pattern rng d0 ~m:(2 + Random.State.int rng 6) in
    let tau = 0.15 in
    let want =
      List.concat
        (List.mapi
           (fun k d ->
             if Logp.to_prob (Oracle.relevance_max d ~pattern:pat) > tau then
               [ k ]
             else [])
           docs)
    in
    Alcotest.(check (list int)) "stress listing = oracle" want
      (H.sorted_fst (L.query l ~pattern:pat ~tau))
  done

let () =
  Alcotest.run "pti_integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "substring indexes on workload" `Slow test_pipeline_medium;
          Alcotest.test_case "listing on workload" `Slow test_listing_pipeline;
          Alcotest.test_case "correlated workload" `Quick test_correlated_pipeline;
          Alcotest.test_case "large-scale stress" `Slow test_stress_large;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "§2 motivation example" `Quick test_motivation_example;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "tau monotonicity" `Quick test_tau_monotonicity;
          Alcotest.test_case "special = general" `Quick test_special_general_consistency;
        ] );
    ]
