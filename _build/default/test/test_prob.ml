(* Tests for Pti_prob: log-domain probabilities and prefix-product
   arrays. *)

module Logp = Pti_prob.Logp
module Parray = Pti_prob.Parray
module H = Pti_test_helpers

let check_float = Alcotest.(check (float 1e-12))

let test_zero_one () =
  check_float "to_prob zero" 0.0 (Logp.to_prob Logp.zero);
  check_float "to_prob one" 1.0 (Logp.to_prob Logp.one);
  Alcotest.(check bool) "is_zero zero" true (Logp.is_zero Logp.zero);
  Alcotest.(check bool) "is_zero one" false (Logp.is_zero Logp.one);
  Alcotest.(check bool) "zero < one" true Logp.(zero < one)

let test_roundtrip () =
  List.iter
    (fun p -> check_float "roundtrip" p (Logp.to_prob (Logp.of_prob p)))
    [ 0.0; 1e-300; 0.001; 0.1; 0.25; 0.5; 0.75; 0.999; 1.0 ]

let test_of_prob_range () =
  Alcotest.check_raises "negative" (Invalid_argument "Logp.of_prob: -0.1 not in [0, 1]")
    (fun () -> ignore (Logp.of_prob (-0.1)));
  (* tiny slack above 1 clamps to one *)
  check_float "slack clamps" 1.0 (Logp.to_prob (Logp.of_prob (1.0 +. 1e-10)));
  Alcotest.(check bool) "far above 1 raises" true
    (try
       ignore (Logp.of_prob 1.5);
       false
     with Invalid_argument _ -> true)

let test_mul_div () =
  let a = Logp.of_prob 0.5 and b = Logp.of_prob 0.25 in
  check_float "mul" 0.125 (Logp.to_prob (Logp.mul a b));
  check_float "div" 0.5 (Logp.to_prob (Logp.div (Logp.mul a b) b));
  check_float "mul zero" 0.0 (Logp.to_prob (Logp.mul a Logp.zero));
  check_float "div zero num" 0.0 (Logp.to_prob (Logp.div Logp.zero b));
  Alcotest.(check bool) "div by zero raises" true
    (try
       ignore (Logp.div a Logp.zero);
       false
     with Invalid_argument _ -> true)

let test_order () =
  let ps = [ 0.0; 0.1; 0.2; 0.5; 0.9; 1.0 ] in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          Alcotest.(check int)
            (Printf.sprintf "compare %g %g" p q)
            (compare p q)
            (Logp.compare (Logp.of_prob p) (Logp.of_prob q)))
        ps)
    ps

let test_max_min_sub () =
  let a = Logp.of_prob 0.3 and b = Logp.of_prob 0.6 in
  check_float "max" 0.6 (Logp.to_prob (Logp.max a b));
  check_float "min" 0.3 (Logp.to_prob (Logp.min a b));
  check_float "sub_prob" 0.2 (Logp.to_prob (Logp.sub_prob a 0.1));
  check_float "sub_prob floor" 0.0 (Logp.to_prob (Logp.sub_prob a 0.5))

let test_pp () =
  Alcotest.(check string) "pp" "0.25" (Logp.to_string (Logp.of_prob 0.25));
  Alcotest.(check string) "pp zero" "0" (Logp.to_string Logp.zero)

(* Parray *)

let naive_window probs pos len =
  let acc = ref 1.0 in
  for i = pos to pos + len - 1 do
    acc := !acc *. probs.(i)
  done;
  !acc

let test_parray_basic () =
  let probs = [| 0.4; 0.7; 0.5; 0.8; 0.9; 0.6 |] in
  let pa = Parray.of_probs probs in
  Alcotest.(check int) "length" 6 (Parray.length pa);
  for pos = 0 to 5 do
    for len = 1 to 6 - pos do
      check_float
        (Printf.sprintf "window %d %d" pos len)
        (naive_window probs pos len)
        (Logp.to_prob (Parray.window pa ~pos ~len))
    done
  done

let test_parray_banana () =
  (* The worked example of Figure 5: X = (b,.4)(a,.7)(n,.5)(a,.8)(n,.9)(a,.6) *)
  let pa = Parray.of_probs [| 0.4; 0.7; 0.5; 0.8; 0.9; 0.6 |] in
  (* "ana" at position 1: .7 * .5 * .8 = .28; at position 3: .8*.9*.6=.432 *)
  check_float "ana@1" 0.28 (Logp.to_prob (Parray.window pa ~pos:1 ~len:3));
  check_float "ana@3" 0.432 (Logp.to_prob (Parray.window pa ~pos:3 ~len:3))

let test_parray_zeros () =
  let pa =
    Parray.of_logps
      [| Logp.of_prob 0.5; Logp.zero; Logp.of_prob 0.8; Logp.of_prob 0.9 |]
  in
  check_float "window over zero" 0.0 (Logp.to_prob (Parray.window pa ~pos:0 ~len:2));
  check_float "window avoiding zero" 0.72
    (Logp.to_prob (Parray.window pa ~pos:2 ~len:2));
  check_float "prefix with zero" 0.0 (Logp.to_prob (Parray.prefix pa 3));
  check_float "prefix before zero" 0.5 (Logp.to_prob (Parray.prefix pa 1))

let test_parray_bounds () =
  let pa = Parray.of_probs [| 0.5; 0.5 |] in
  List.iter
    (fun (pos, len) ->
      Alcotest.(check bool)
        (Printf.sprintf "invalid %d %d" pos len)
        true
        (try
           ignore (Parray.window pa ~pos ~len);
           false
         with Invalid_argument _ -> true))
    [ (-1, 1); (0, 0); (0, 3); (2, 1); (1, 2) ]

let prop_window_matches_naive =
  QCheck2.Test.make ~name:"parray window = naive product" ~count:500
    QCheck2.Gen.(
      let* n = int_range 1 50 in
      let* probs = array_repeat n (float_range 0.01 1.0) in
      let* pos = int_range 0 (n - 1) in
      let* len = int_range 1 (n - pos) in
      return (probs, pos, len))
    (fun (probs, pos, len) ->
      let pa = Parray.of_probs probs in
      let got = Logp.to_prob (Parray.window pa ~pos ~len) in
      Float.abs (got -. naive_window probs pos len) < 1e-9)

let prop_no_underflow =
  QCheck2.Test.make ~name:"long products do not underflow to 0" ~count:20
    QCheck2.Gen.(int_range 500 2000)
    (fun n ->
      (* 0.5^n underflows a double for n > ~1074; log-space must not. *)
      let pa = Parray.of_probs (Array.make n 0.5) in
      let w = Parray.window pa ~pos:0 ~len:n in
      (not (Logp.is_zero w))
      && Float.abs (Logp.to_log w -. (float_of_int n *. log 0.5)) < 1e-6)

let () =
  Alcotest.run "pti_prob"
    [
      ( "logp",
        [
          Alcotest.test_case "zero/one" `Quick test_zero_one;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "of_prob range" `Quick test_of_prob_range;
          Alcotest.test_case "mul/div" `Quick test_mul_div;
          Alcotest.test_case "order" `Quick test_order;
          Alcotest.test_case "max/min/sub_prob" `Quick test_max_min_sub;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ( "parray",
        [
          Alcotest.test_case "windows vs naive" `Quick test_parray_basic;
          Alcotest.test_case "figure 5 example" `Quick test_parray_banana;
          Alcotest.test_case "zero probabilities" `Quick test_parray_zeros;
          Alcotest.test_case "bounds checking" `Quick test_parray_bounds;
          QCheck_alcotest.to_alcotest prop_window_matches_naive;
          QCheck_alcotest.to_alcotest prop_no_underflow;
        ] );
    ]

let _ = H.rng_of_seed
