(* Tests for Pti_ustring: the uncertain string model, parser, possible
   worlds, correlations, and the exact matching oracle. *)

module U = Pti_ustring.Ustring
module Sym = Pti_ustring.Sym
module Correlation = Pti_ustring.Correlation
module Worlds = Pti_ustring.Worlds
module Oracle = Pti_ustring.Oracle
module Logp = Pti_prob.Logp
module H = Pti_test_helpers

let check_float = Alcotest.(check (float 1e-9))

(* Figure 1(a): S[1]={a .3, b .4, d .3}, S[2]={a .6, c .4}, S[3]={d 1},
   S[4]={a .5, c .5}, S[5]={a 1}. *)
let figure1 = U.parse "a:.3,b:.4,d:.3 a:.6,c:.4 d a:.5,c:.5 a"

let test_sym () =
  Alcotest.(check char) "roundtrip" 'Q' (Sym.to_char (Sym.of_char 'Q'));
  Alcotest.(check char) "separator prints as $" '$' (Sym.to_char Sym.separator);
  Alcotest.(check bool) "is_separator" true (Sym.is_separator Sym.separator);
  Alcotest.(check string) "of_string/to_string" "HELLO"
    (Sym.to_string (Sym.of_string "HELLO"));
  Alcotest.(check bool) "reserved code rejected" true
    (try
       ignore (Sym.of_char '\001');
       false
     with Invalid_argument _ -> true)

let test_parse_figure1 () =
  Alcotest.(check int) "length" 5 (U.length figure1);
  check_float "pr(a@0)" 0.3 (U.prob figure1 ~pos:0 ~sym:(Sym.of_char 'a'));
  check_float "pr(b@0)" 0.4 (U.prob figure1 ~pos:0 ~sym:(Sym.of_char 'b'));
  check_float "pr(d@2)" 1.0 (U.prob figure1 ~pos:2 ~sym:(Sym.of_char 'd'));
  check_float "pr(absent)" 0.0 (U.prob figure1 ~pos:2 ~sym:(Sym.of_char 'z'));
  Alcotest.(check int) "total choices" 9 (U.n_choices figure1);
  Alcotest.(check int) "max choices" 3 (U.max_choices figure1);
  Alcotest.(check bool) "validates" true (U.validate figure1 = Ok ())

let test_parse_roundtrip () =
  let u = U.parse (U.to_text figure1) in
  Alcotest.(check int) "length" (U.length figure1) (U.length u);
  for i = 0 to U.length figure1 - 1 do
    Array.iter
      (fun (c : U.choice) ->
        check_float "prob preserved" c.prob (U.prob u ~pos:i ~sym:c.sym))
      (U.choices figure1 i)
  done

let test_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (try
           ignore (U.parse s);
           false
         with Invalid_argument _ -> true))
    [ ""; "A:"; "AB"; "A:1.5"; "A:0"; "A:-0.2"; "A:.6,A:.4"; "A:.6,B:.6" ]

let test_special_deterministic () =
  let det = U.of_string "HELLO" in
  Alcotest.(check bool) "det is special" true (U.is_special det);
  Alcotest.(check bool) "det is deterministic" true (U.is_deterministic det);
  let special = U.parse "A:.5 B:.9 C" in
  (* positions summing to < 1 are allowed by make but fail validate *)
  Alcotest.(check bool) "special" true (U.is_special special);
  Alcotest.(check bool) "not deterministic" false (U.is_deterministic special);
  Alcotest.(check bool) "figure1 not special" false (U.is_special figure1);
  Alcotest.(check bool) "sum<1 fails validate" true
    (match U.validate special with Error _ -> true | Ok () -> false)

(* Figure 1(b): the 12 possible worlds of Figure 1(a) and the two probed
   probabilities. *)
let test_possible_worlds_figure1 () =
  let worlds = Worlds.enumerate figure1 in
  Alcotest.(check int) "count" 12 (List.length worlds);
  Alcotest.(check int) "count function" 12 (Worlds.count figure1);
  let prob_of w =
    match List.assoc_opt (Sym.of_string w) (List.map (fun (a, p) -> (a, p)) worlds) with
    | Some p -> Logp.to_prob p
    | None -> Alcotest.failf "world %s missing" w
  in
  check_float "aadaa" 0.09 (prob_of "aadaa");
  (* the paper's Figure 1(b) lists "badca" three times with different
     probabilities (copy-paste typos); the true value is
     .4 * .6 * 1 * .5 * 1 = 0.12 *)
  check_float "badca" 0.12 (prob_of "badca");
  check_float "dcdca" 0.06 (prob_of "dcdca");
  (* all worlds sum to 1 *)
  let total =
    List.fold_left (fun acc (_, p) -> acc +. Logp.to_prob p) 0.0 worlds
  in
  check_float "sum to 1" 1.0 total

let prop_worlds_sum_to_one =
  QCheck2.Test.make ~name:"possible worlds sum to 1" ~count:100
    (H.gen_ustring ~max_n:8 ~k:3 ~maxc:3 ())
    (fun u ->
      let total =
        List.fold_left
          (fun acc (_, p) -> acc +. Logp.to_prob p)
          0.0 (Worlds.enumerate u)
      in
      Float.abs (total -. 1.0) < 1e-9)

(* §3.2 worked example: in the Figure 3 string, "SFPQ" matches at
   position 1 with probability .7 * 1 * 1 * .5 = .35, and "AT" matches
   at 6 with .4*.3=.12 and at 8 with 1*.5=.5. *)
let figure3 =
  U.parse
    "P S:.7,F:.3 F P Q:.5,T:.5 P A:.4,F:.4,P:.2 I:.3,L:.3,F:.1,T:.3 A S:.5,T:.5 A"

let test_figure3_queries () =
  check_float "SFPQ@1" 0.35
    (Logp.to_prob
       (Oracle.occurrence_logp figure3 ~pattern:(Sym.of_string "SFPQ") ~pos:1));
  check_float "AT@6" 0.12
    (Logp.to_prob (Oracle.occurrence_logp figure3 ~pattern:(Sym.of_string "AT") ~pos:6));
  check_float "AT@8" 0.5
    (Logp.to_prob (Oracle.occurrence_logp figure3 ~pattern:(Sym.of_string "AT") ~pos:8));
  (* the motivating query (AT, 0.4) reports only position 8 *)
  Alcotest.(check (list int)) "(AT, .4)" [ 8 ]
    (List.map fst
       (Oracle.occurrences figure3 ~pattern:(Sym.of_string "AT")
          ~tau:(Logp.of_prob 0.4)))

let test_oracle_vs_worlds () =
  (* occurrence probability at pos 0 for a full-length pattern equals the
     world's probability *)
  let rng = H.rng_of_seed 21 in
  for _ = 1 to 50 do
    let u = H.random_ustring rng (1 + Random.State.int rng 6) 3 3 in
    List.iter
      (fun (w, p) ->
        let q = Oracle.occurrence_logp u ~pattern:w ~pos:0 in
        if not (Logp.approx_equal ~eps:1e-12 p q) then
          Alcotest.failf "world prob mismatch")
      (Worlds.enumerate u)
  done

let test_matched_strings_at () =
  let tau = Logp.of_prob 0.1 in
  let got = Worlds.matched_strings_at figure1 ~pos:0 ~len:2 ~tau in
  (* strings of length 2 at pos 0 with prob > .1:
     aa=.18 ac=.12 ba=.24 bc=.16 da=.18 dc=.12 *)
  Alcotest.(check int) "all six" 6 (List.length got);
  List.iter
    (fun (w, p) ->
      let direct = Oracle.occurrence_logp figure1 ~pattern:w ~pos:0 in
      if not (Logp.approx_equal p direct) then Alcotest.fail "prob mismatch";
      if Logp.(p <= tau) then Alcotest.fail "below threshold reported")
    got;
  (* raising the threshold prunes *)
  Alcotest.(check int) "tau=.17" 3
    (List.length (Worlds.matched_strings_at figure1 ~pos:0 ~len:2 ~tau:(Logp.of_prob 0.17)))

(* Correlation semantics (§3.3, Figure 4): S[1]={e .6, f .4}, S[2]={q 1},
   S[3]={z: e1 => .3, not e1 => .4}. *)
let figure4 =
  let rules =
    [
      {
        Correlation.dep_pos = 2;
        dep_sym = Sym.of_char 'z';
        src_pos = 0;
        src_sym = Sym.of_char 'e';
        p_present = 0.3;
        p_absent = 0.4;
      };
    ]
  in
  (* marginal of z at 2 = .6*.3 + .4*.4 = .34 *)
  U.make ~correlations:rules
    [|
      [| { U.sym = Sym.of_char 'e'; prob = 0.6 }; { U.sym = Sym.of_char 'f'; prob = 0.4 } |];
      [| { U.sym = Sym.of_char 'q'; prob = 1.0 } |];
      [| { U.sym = Sym.of_char 'z'; prob = 0.34 } |];
    |]

let test_correlation_figure4 () =
  (* eqz: source inside window and matched: pr(z) = .3 *)
  check_float "eqz" (0.6 *. 1.0 *. 0.3)
    (Logp.to_prob (Oracle.occurrence_logp figure4 ~pattern:(Sym.of_string "eqz") ~pos:0));
  (* fqz: source inside window, not matched: pr(z) = .4 *)
  check_float "fqz" (0.4 *. 1.0 *. 0.4)
    (Logp.to_prob (Oracle.occurrence_logp figure4 ~pattern:(Sym.of_string "fqz") ~pos:0));
  (* qz: source outside window: pr(z3) = .6*.3 + .4*.4 = .34 *)
  check_float "qz" (1.0 *. 0.34)
    (Logp.to_prob (Oracle.occurrence_logp figure4 ~pattern:(Sym.of_string "qz") ~pos:1));
  (* marginal variant ignores the rule *)
  check_float "qz marginal" 0.34
    (Logp.to_prob
       (Oracle.occurrence_logp_marginal figure4 ~pattern:(Sym.of_string "qz") ~pos:1))

let test_correlation_validation () =
  let rule dep_pos src_pos =
    {
      Correlation.dep_pos;
      dep_sym = Sym.of_char 'z';
      src_pos;
      src_sym = Sym.of_char 'e';
      p_present = 0.3;
      p_absent = 0.4;
    }
  in
  Alcotest.(check bool) "self correlation rejected" true
    (try
       ignore (Correlation.of_rules [ rule 1 1 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate target rejected" true
    (try
       ignore (Correlation.of_rules [ rule 2 0; rule 2 1 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "chain rejected" true
    (try
       ignore
         (Correlation.of_rules
            [
              rule 2 1;
              {
                Correlation.dep_pos = 1;
                dep_sym = Sym.of_char 'e';
                src_pos = 0;
                src_sym = Sym.of_char 'e';
                p_present = 0.5;
                p_absent = 0.5;
              };
            ]);
       false
     with Invalid_argument _ -> true);
  (* inconsistent marginal rejected by Ustring.make *)
  Alcotest.(check bool) "inconsistent marginal rejected" true
    (try
       ignore
         (U.make
            ~correlations:
              [
                {
                  Correlation.dep_pos = 1;
                  dep_sym = Sym.of_char 'b';
                  src_pos = 0;
                  src_sym = Sym.of_char 'a';
                  p_present = 0.9;
                  p_absent = 0.9;
                };
              ]
            [|
              [| { U.sym = Sym.of_char 'a'; prob = 1.0 } |];
              [| { U.sym = Sym.of_char 'b'; prob = 0.5 } |];
            |]);
       false
     with Invalid_argument _ -> true)

let test_marginal_mixture () =
  let r =
    {
      Correlation.dep_pos = 2;
      dep_sym = Sym.of_char 'z';
      src_pos = 0;
      src_sym = Sym.of_char 'e';
      p_present = 0.3;
      p_absent = 0.4;
    }
  in
  check_float "mixture" 0.34 (Correlation.marginal r ~src_prob:0.6)

let test_concat () =
  let a = U.of_string "AB" and b = U.of_string "CD" in
  let joined, starts = U.concat ~sep:(Some Sym.separator) [ a; b ] in
  Alcotest.(check int) "length with separator" 5 (U.length joined);
  Alcotest.check Alcotest.(array int) "starts" [| 0; 3 |] starts;
  check_float "separator deterministic" 1.0
    (U.prob joined ~pos:2 ~sym:Sym.separator);
  let joined2, starts2 = U.concat ~sep:None [ a; b ] in
  Alcotest.(check int) "length without separator" 4 (U.length joined2);
  Alcotest.check Alcotest.(array int) "starts2" [| 0; 2 |] starts2

let test_sample_distribution () =
  (* sampling follows marginals: estimate pr(b@0) of figure1 (=0.4) *)
  let rng = H.rng_of_seed 31 in
  let trials = 20_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let w = U.sample rng figure1 in
    if w.(0) = Sym.of_char 'b' then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "freq %.3f near 0.4" freq)
    true
    (Float.abs (freq -. 0.4) < 0.02)

let test_make_validation () =
  Alcotest.(check bool) "empty position" true
    (try
       ignore (U.make [| [||] |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "separator in content" true
    (try
       ignore (U.make [| [| { U.sym = Sym.separator; prob = 1.0 } |] |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "sum > 1" true
    (try
       ignore
         (U.make
            [|
              [|
                { U.sym = Sym.of_char 'a'; prob = 0.8 };
                { U.sym = Sym.of_char 'b'; prob = 0.8 };
              |];
            |]);
       false
     with Invalid_argument _ -> true)

let test_oracle_occurrences_order () =
  let occs =
    Oracle.occurrences figure3 ~pattern:(Sym.of_string "A") ~tau:(Logp.of_prob 0.05)
  in
  (* positions ascending *)
  let rec ascending = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending positions" true (ascending occs)

let test_relevance_metrics () =
  (* Figure 6 example: Rel(S, "BFA")max = .09 and OR = .19786 (approx) *)
  let s =
    U.parse
      "A:.4,B:.3,F:.3 B:.3,L:.3,F:.3,J:.1 A:.5,F:.5 A:.6,B:.4 B:.5,F:.3,J:.2 \
       A:.4,C:.3,E:.2,F:.1"
  in
  let pat = Sym.of_string "BFA" in
  check_float "rel_max" 0.09 (Logp.to_prob (Oracle.relevance_max s ~pattern:pat));
  (* occurrences of BFA: .3*.3*.5 = .045 at 0, .3*.5*.6 = .09 at 1,
     .4*.3*.4 = .048 at 3; OR = .183 - .045*.09*.048 = .18281 (the
     paper's prose uses .06 for the first occurrence, inconsistent with
     its own Figure 6 table) *)
  let or_v = Logp.to_prob (Oracle.relevance_or s ~pattern:pat) in
  let want = 0.045 +. 0.09 +. 0.048 -. (0.045 *. 0.09 *. 0.048) in
  Alcotest.(check bool)
    (Printf.sprintf "rel_or %.5f ~ %.5f" or_v want)
    true
    (Float.abs (or_v -. want) < 1e-9)

let prop_oracle_monotone_in_length =
  QCheck2.Test.make ~name:"occurrence prob non-increasing in pattern length"
    ~count:200
    (H.gen_ustring ~max_n:15 ())
    (fun u ->
      let rng = H.rng_of_seed (U.length u) in
      let n = U.length u in
      let m = 1 + Random.State.int rng n in
      let start = Random.State.int rng (n - m + 1) in
      let pat = H.pattern_at rng u ~start ~m in
      let ok = ref true in
      for len = 1 to m - 1 do
        let shorter = Array.sub pat 0 len in
        let ps = Oracle.occurrence_logp u ~pattern:shorter ~pos:start in
        let pl = Oracle.occurrence_logp u ~pattern:pat ~pos:start in
        if Logp.(pl > ps) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "pti_ustring"
    [
      ( "model",
        [
          Alcotest.test_case "symbols" `Quick test_sym;
          Alcotest.test_case "figure 1(a) parse" `Quick test_parse_figure1;
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "special/deterministic" `Quick test_special_deterministic;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "sampling follows marginals" `Slow test_sample_distribution;
        ] );
      ( "worlds",
        [
          Alcotest.test_case "figure 1(b) worlds" `Quick test_possible_worlds_figure1;
          Alcotest.test_case "matched strings at position" `Quick test_matched_strings_at;
          QCheck_alcotest.to_alcotest prop_worlds_sum_to_one;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "figure 3 queries" `Quick test_figure3_queries;
          Alcotest.test_case "oracle = world probability" `Quick test_oracle_vs_worlds;
          Alcotest.test_case "occurrences ascending" `Quick test_oracle_occurrences_order;
          Alcotest.test_case "figure 6 relevance metrics" `Quick test_relevance_metrics;
          QCheck_alcotest.to_alcotest prop_oracle_monotone_in_length;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "figure 4 semantics" `Quick test_correlation_figure4;
          Alcotest.test_case "rule validation" `Quick test_correlation_validation;
          Alcotest.test_case "marginal mixture" `Quick test_marginal_mixture;
        ] );
    ]
