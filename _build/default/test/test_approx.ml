(* Tests for Approx_index (§7): the two-sided guarantee
   (completeness above τ, soundness above τ − ε), the value bound
   (true ≤ reported ≤ true + ε), behaviour across ε, and link count
   scaling. *)

module U = Pti_ustring.Ustring
module Oracle = Pti_ustring.Oracle
module Logp = Pti_prob.Logp
module A = Pti_core.Approx_index
module Ah = Pti_core.Approx_hsv
module P = Pti_core.Property_index
module G = Pti_core.General_index
module H = Pti_test_helpers

(* run the same guarantee checks against either approximate variant *)
type variant = { name : string; build : epsilon:float -> tau_min:float -> U.t -> pattern:int array -> tau:float -> (int * Logp.t) list }

let leaf_variant =
  { name = "per-leaf";
    build = (fun ~epsilon ~tau_min u ~pattern ~tau ->
      A.query (A.build ~epsilon ~tau_min u) ~pattern ~tau) }

let hsv_variant =
  { name = "hsv";
    build = (fun ~epsilon ~tau_min u ~pattern ~tau ->
      Ah.query (Ah.build ~epsilon ~tau_min u) ~pattern ~tau) }

let check_guarantees u a ~pat ~tau ~eps =
  let got = A.query a ~pattern:pat ~tau in
  let got_pos = List.map fst got in
  (* completeness: every true match above tau is reported *)
  List.iter
    (fun (p, _) ->
      if not (List.mem p got_pos) then
        Alcotest.failf "missing true match at %d (tau=%g eps=%g)" p tau eps)
    (Oracle.occurrences u ~pattern:pat ~tau:(Logp.of_prob tau));
  (* soundness + value bound *)
  List.iter
    (fun (p, v) ->
      let true_p = Logp.to_prob (Oracle.occurrence_logp u ~pattern:pat ~pos:p) in
      let vp = Logp.to_prob v in
      if true_p <= tau -. eps -. 1e-9 then
        Alcotest.failf "reported %d with true prob %g <= tau - eps = %g" p
          true_p (tau -. eps);
      if vp < true_p -. 1e-9 || vp > true_p +. eps +. 1e-9 then
        Alcotest.failf "value %g outside [true, true+eps] = [%g, %g]" vp true_p
          (true_p +. eps))
    got;
  H.check_sorted_desc "approx" got

let test_guarantees_random () =
  let rng = H.rng_of_seed 81 in
  for _ = 1 to 200 do
    let n = 2 + Random.State.int rng 35 in
    let u = H.random_ustring rng n 4 3 in
    let tau_min = 0.05 +. Random.State.float rng 0.2 in
    let eps = 0.02 +. Random.State.float rng 0.25 in
    let tau = tau_min +. Random.State.float rng (0.9 -. tau_min) in
    let a = A.build ~epsilon:eps ~tau_min u in
    let pat = H.random_pattern rng u 12 in
    check_guarantees u a ~pat ~tau ~eps
  done

let test_guarantees_correlated () =
  let rng = H.rng_of_seed 82 in
  for _ = 1 to 60 do
    let n = 4 + Random.State.int rng 15 in
    let u = H.random_ustring rng n 3 3 in
    let u = Pti_workload.Dataset.add_random_correlations rng u ~count:2 in
    let tau_min = 0.05 +. Random.State.float rng 0.2 in
    let eps = 0.05 +. Random.State.float rng 0.2 in
    let tau = tau_min +. Random.State.float rng (0.8 -. tau_min) in
    let a = A.build ~epsilon:eps ~tau_min u in
    let pat = H.random_pattern rng u 8 in
    check_guarantees u a ~pat ~tau ~eps
  done

let test_small_epsilon_equals_exact () =
  (* with ε below the smallest probability gap, the approximate index
     reports exactly the exact index's positions *)
  let rng = H.rng_of_seed 83 in
  for _ = 1 to 60 do
    let n = 2 + Random.State.int rng 20 in
    let u = H.random_ustring rng n 3 2 in
    let tau_min = 0.1 in
    let g = G.build ~tau_min u in
    let a = A.build ~epsilon:1e-9 ~tau_min u in
    let pat = H.random_pattern rng u 8 in
    let tau = 0.1 +. Random.State.float rng 0.6 in
    Alcotest.(check (list int))
      "tiny epsilon = exact"
      (H.sorted_fst (G.query g ~pattern:pat ~tau))
      (H.sorted_fst (A.query a ~pattern:pat ~tau))
  done

let test_links_scale_with_epsilon () =
  let u = H.random_ustring (H.rng_of_seed 84) 200 4 3 in
  let tight = A.build ~epsilon:0.01 ~tau_min:0.05 u in
  let loose = A.build ~epsilon:0.3 ~tau_min:0.05 u in
  Alcotest.(check bool)
    (Printf.sprintf "links %d (eps=.01) > %d (eps=.3)" (A.n_links tight)
       (A.n_links loose))
    true
    (A.n_links tight > A.n_links loose);
  Alcotest.(check bool) "sizes positive" true
    (A.size_words tight > 0 && A.size_words loose > 0);
  Alcotest.(check bool) "stats" true (String.length (A.stats tight) > 0)

let test_all_pattern_lengths () =
  (* unlike the exact index, the approximate one has no special long-
     pattern machinery: probe every length on one string *)
  let rng = H.rng_of_seed 85 in
  let u = H.random_ustring rng 40 3 2 in
  let tau_min = 0.02 and eps = 0.1 in
  let a = A.build ~epsilon:eps ~tau_min u in
  for m = 1 to 40 do
    let pat = H.pattern_at rng u ~start:0 ~m in
    check_guarantees u a ~pat ~tau:0.15 ~eps
  done

let test_validation () =
  let u = H.random_ustring (H.rng_of_seed 86) 10 3 2 in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "epsilon 0" true
    (raises (fun () -> ignore (A.build ~epsilon:0.0 ~tau_min:0.1 u)));
  Alcotest.(check bool) "epsilon 1" true
    (raises (fun () -> ignore (A.build ~epsilon:1.0 ~tau_min:0.1 u)));
  let a = A.build ~epsilon:0.1 ~tau_min:0.2 u in
  Alcotest.(check bool) "tau below tau_min" true
    (raises (fun () -> ignore (A.query a ~pattern:[| Char.code 'A' |] ~tau:0.1)));
  Alcotest.(check bool) "empty pattern" true
    (raises (fun () -> ignore (A.query a ~pattern:[||] ~tau:0.5)));
  Alcotest.(check (float 1e-12)) "epsilon accessor" 0.1 (A.epsilon a);
  Alcotest.(check (float 1e-12)) "tau_min accessor" 0.2 (A.tau_min a)

let prop_guarantees =
  QCheck2.Test.make ~name:"approx guarantees (qcheck)" ~count:100
    QCheck2.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* n = int_range 2 25 in
      let* eps = float_range 0.02 0.3 in
      return (seed, n, eps))
    (fun (seed, n, eps) ->
      let rng = H.rng_of_seed seed in
      let u = H.random_ustring rng n 4 3 in
      let tau_min = 0.1 in
      let tau = 0.1 +. Random.State.float rng 0.7 in
      let a = A.build ~epsilon:eps ~tau_min u in
      let pat = H.random_pattern rng u 8 in
      try
        check_guarantees u a ~pat ~tau ~eps;
        true
      with _ -> false)

(* Guarantee checks applied to a raw result list. *)
let check_result_guarantees u ~pat ~tau ~eps got =
  let got_pos = List.map fst got in
  List.iter
    (fun (p, _) ->
      if not (List.mem p got_pos) then
        Alcotest.failf "missing true match at %d (tau=%g eps=%g)" p tau eps)
    (Oracle.occurrences u ~pattern:pat ~tau:(Logp.of_prob tau));
  List.iter
    (fun (p, v) ->
      let true_p = Logp.to_prob (Oracle.occurrence_logp u ~pattern:pat ~pos:p) in
      let vp = Logp.to_prob v in
      if true_p <= tau -. eps -. 1e-9 then
        Alcotest.failf "reported %d with true prob %g <= tau - eps" p true_p;
      if vp < true_p -. 1e-9 || vp > true_p +. eps +. 1e-9 then
        Alcotest.failf "value %g outside [true, true+eps]" vp)
    got

let test_variant_guarantees variant () =
  let rng = H.rng_of_seed 87 in
  for _ = 1 to 100 do
    let n = 2 + Random.State.int rng 30 in
    let u = H.random_ustring rng n 4 3 in
    let tau_min = 0.05 +. Random.State.float rng 0.2 in
    let eps = 0.02 +. Random.State.float rng 0.25 in
    let tau = tau_min +. Random.State.float rng (0.9 -. tau_min) in
    let pat = H.random_pattern rng u 10 in
    let got = variant.build ~epsilon:eps ~tau_min u ~pattern:pat ~tau in
    check_result_guarantees u ~pat ~tau ~eps got
  done

(* Both variants agree outside the gray zone (tau - eps, tau]. *)
let test_variants_agree () =
  let rng = H.rng_of_seed 88 in
  for _ = 1 to 80 do
    let n = 2 + Random.State.int rng 30 in
    let u = H.random_ustring rng n 4 3 in
    let tau_min = 0.1 and eps = 0.1 in
    let tau = 0.1 +. Random.State.float rng 0.6 in
    let pat = H.random_pattern rng u 8 in
    let a = A.build ~epsilon:eps ~tau_min u in
    let h = Ah.build ~epsilon:eps ~tau_min u in
    let ga = H.sorted_fst (A.query a ~pattern:pat ~tau) in
    let gh = H.sorted_fst (Ah.query h ~pattern:pat ~tau) in
    let sym_diff =
      List.filter (fun p -> not (List.mem p gh)) ga
      @ List.filter (fun p -> not (List.mem p ga)) gh
    in
    List.iter
      (fun p ->
        let tp = Logp.to_prob (Oracle.occurrence_logp u ~pattern:pat ~pos:p) in
        if tp > tau +. 1e-9 || tp <= tau -. eps -. 1e-9 then
          Alcotest.failf "variants disagree outside gray zone at %d (%g)" p tp)
      sym_diff
  done

let test_hsv_fewer_links () =
  let u = H.random_ustring (H.rng_of_seed 89) 150 4 3 in
  let a = A.build ~epsilon:0.05 ~tau_min:0.1 u in
  let h = Ah.build ~epsilon:0.05 ~tau_min:0.1 u in
  Alcotest.(check bool)
    (Printf.sprintf "hsv %d <= per-leaf %d links" (Ah.n_links h) (A.n_links a))
    true
    (Ah.n_links h <= A.n_links a);
  Alcotest.(check bool) "marks counted" true (Ah.n_marks h > 0);
  Alcotest.(check bool) "stats" true (String.length (Ah.stats h) > 0)

(* Property-matching baseline: exact at its fixed threshold. *)
let test_property_exact () =
  let rng = H.rng_of_seed 90 in
  for trial = 1 to 150 do
    let n = 2 + Random.State.int rng 30 in
    let u = H.random_ustring rng n 4 3 in
    let u =
      if trial mod 3 = 0 then
        Pti_workload.Dataset.add_random_correlations rng u ~count:2
      else u
    in
    let tau_c = 0.05 +. Random.State.float rng 0.4 in
    let p = P.build ~tau_c u in
    Alcotest.(check (float 1e-12)) "tau_c accessor" tau_c (P.tau_c p);
    let pat = H.random_pattern rng u 10 in
    let want =
      H.sorted_fst (Oracle.occurrences u ~pattern:pat ~tau:(Logp.of_prob tau_c))
    in
    Alcotest.(check (list int)) "property = oracle" want
      (H.sorted_fst (P.query p ~pattern:pat));
    Alcotest.(check int) "count" (List.length want) (P.count p ~pattern:pat)
  done

let test_property_probabilities () =
  let rng = H.rng_of_seed 91 in
  for _ = 1 to 50 do
    let u = H.random_ustring rng (2 + Random.State.int rng 20) 3 3 in
    let p = P.build ~tau_c:0.15 u in
    let pat = H.random_pattern rng u 6 in
    List.iter
      (fun (pos, lp) ->
        let w = Oracle.occurrence_logp u ~pattern:pat ~pos in
        if not (Logp.approx_equal ~eps:1e-9 lp w) then
          Alcotest.failf "property prob mismatch at %d" pos)
      (P.query p ~pattern:pat)
  done

(* Link_stab.epsilon_partition unit properties: segments tile the depth
   range (until pruning), drops within segments stay <= epsilon, and the
   stored value is the probability at the segment's first depth. *)
let test_epsilon_partition () =
  let rng = H.rng_of_seed 92 in
  for _ = 1 to 200 do
    let hi = 1 + Random.State.int rng 40 in
    (* a random non-increasing profile in (0, 1] *)
    let profile = Array.make (hi + 1) 1.0 in
    for k = 1 to hi do
      profile.(k) <-
        profile.(k - 1) *. (0.7 +. Random.State.float rng 0.3)
    done;
    let epsilon = 0.01 +. Random.State.float rng 0.3 in
    let segments = ref [] in
    Pti_core.Link_stab.epsilon_partition ~epsilon ~floor:0.0
      ~prob:(fun k -> profile.(k))
      ~lo_depth:0 ~hi_depth:hi
      (fun t o v -> segments := (t, o, v) :: !segments);
    let segments = List.rev !segments in
    (* tiling: consecutive, starting at 0, ending at hi *)
    let rec check_tiling expected = function
      | [] -> Alcotest.(check int) "tiles to hi" hi expected
      | (t, o, v) :: rest ->
          Alcotest.(check int) "contiguous" expected t;
          Alcotest.(check bool) "non-empty" true (o > t);
          Alcotest.(check (float 1e-12)) "value = prob at first depth"
            profile.(t + 1) v;
          Alcotest.(check bool) "drop within epsilon" true
            (v -. profile.(o) <= epsilon +. 1e-12);
          check_tiling o rest
    in
    check_tiling 0 segments
  done;
  (* pruning: a floor above the whole profile yields nothing *)
  let segments = ref 0 in
  Pti_core.Link_stab.epsilon_partition ~epsilon:0.1 ~floor:0.99
    ~prob:(fun _ -> 0.5)
    ~lo_depth:0 ~hi_depth:10
    (fun _ _ _ -> incr segments);
  Alcotest.(check int) "floor prunes all" 0 !segments

let () =
  Alcotest.run "pti_approx"
    [
      ( "guarantees",
        [
          Alcotest.test_case "random strings" `Quick test_guarantees_random;
          Alcotest.test_case "with correlations" `Quick test_guarantees_correlated;
          Alcotest.test_case "all pattern lengths" `Quick test_all_pattern_lengths;
          QCheck_alcotest.to_alcotest prop_guarantees;
        ] );
      ( "epsilon",
        [
          Alcotest.test_case "tiny epsilon = exact index" `Quick
            test_small_epsilon_equals_exact;
          Alcotest.test_case "link count scales" `Quick test_links_scale_with_epsilon;
        ] );
      ("api", [ Alcotest.test_case "validation" `Quick test_validation ]);
      ( "hsv_variant",
        [
          Alcotest.test_case "per-leaf guarantees (shared check)" `Quick
            (test_variant_guarantees leaf_variant);
          Alcotest.test_case "hsv guarantees" `Quick
            (test_variant_guarantees hsv_variant);
          Alcotest.test_case "variants agree outside gray zone" `Quick
            test_variants_agree;
          Alcotest.test_case "hsv marking reduces links" `Quick
            test_hsv_fewer_links;
        ] );
      ( "link_stab",
        [ Alcotest.test_case "epsilon partition properties" `Quick test_epsilon_partition ] );
      ( "property_baseline",
        [
          Alcotest.test_case "exact at fixed tau_c" `Quick test_property_exact;
          Alcotest.test_case "probabilities exact" `Quick
            test_property_probabilities;
        ] );
    ]
