(* Tests for Listing_index (§6, Problem 2), both relevance metrics,
   against per-document oracle computation. *)

module U = Pti_ustring.Ustring
module Sym = Pti_ustring.Sym
module Oracle = Pti_ustring.Oracle
module Logp = Pti_prob.Logp
module L = Pti_core.Listing_index
module H = Pti_test_helpers

(* Oracle Rel_max per document. *)
let want_max docs pat tau =
  List.concat
    (List.mapi
       (fun k d ->
         if Logp.to_prob (Oracle.relevance_max d ~pattern:pat) > tau then [ k ]
         else [])
       docs)

(* Oracle Rel_or restricted to occurrences visible at construction
   (probability >= tau_min); see the mli note on Rel_or semantics. *)
let rel_or_visible d pat tau_min =
  let m = Array.length pat in
  let sum = ref 0.0 and prod = ref 1.0 and any = ref false in
  for pos = 0 to U.length d - m do
    let p = Logp.to_prob (Oracle.occurrence_logp d ~pattern:pat ~pos) in
    if p >= tau_min -. 1e-12 then begin
      any := true;
      sum := !sum +. p;
      prod := !prod *. p
    end
  done;
  if !any then Float.max 0.0 (Float.min 1.0 (!sum -. !prod)) else 0.0

let want_or docs pat tau_min tau =
  List.concat
    (List.mapi
       (fun k d -> if rel_or_visible d pat tau_min > tau then [ k ] else [])
       docs)

let random_docs rng =
  let nd = 2 + Random.State.int rng 5 in
  List.init nd (fun _ -> H.random_ustring rng (2 + Random.State.int rng 15) 3 2)

let pattern_from_docs rng docs maxm =
  let d = List.nth docs (Random.State.int rng (List.length docs)) in
  H.random_pattern rng d maxm

let test_rel_max_random () =
  let rng = H.rng_of_seed 71 in
  for _ = 1 to 150 do
    let docs = random_docs rng in
    let tau_min = 0.05 +. Random.State.float rng 0.2 in
    let tau = tau_min +. Random.State.float rng (0.7 -. tau_min) in
    let l = L.build ~tau_min docs in
    let pat = pattern_from_docs rng docs 8 in
    let got = L.query l ~pattern:pat ~tau in
    Alcotest.(check (list int)) "docs" (want_max docs pat tau) (H.sorted_fst got);
    H.check_sorted_desc "listing" got;
    (* reported relevance equals the oracle Rel_max *)
    List.iter
      (fun (k, lp) ->
        let w = Oracle.relevance_max (List.nth docs k) ~pattern:pat in
        if not (Logp.approx_equal ~eps:1e-9 lp w) then
          Alcotest.failf "rel_max value mismatch doc %d" k)
      got
  done

let test_rel_or_random () =
  let rng = H.rng_of_seed 72 in
  for _ = 1 to 120 do
    let docs = random_docs rng in
    let tau_min = 0.05 +. Random.State.float rng 0.2 in
    let tau = tau_min +. Random.State.float rng (0.7 -. tau_min) in
    let l = L.build ~relevance:L.Rel_or ~tau_min docs in
    let pat = pattern_from_docs rng docs 6 in
    Alcotest.(check (list int)) "docs (or)"
      (want_or docs pat tau_min tau)
      (H.sorted_fst (L.query l ~pattern:pat ~tau))
  done

let test_figure2_example () =
  (* Figure 2: D = {d1, d2, d3}; query ("BF", 0.1) returns exactly d1.
     d1 = A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5
     d2 = A:.6,C:.4 | B:.5,F:.3,J:.2 | B:.4,C:.3,E:.2,F:.1
     d3 = A:.4,F:.4,P:.2 | I:.3,L:.3,F:.1,T:.3 | A:1 *)
  let d1 = U.parse "A:.4,B:.3,F:.3 B:.3,L:.3,F:.3,J:.1 F:.5,J:.5" in
  let d2 = U.parse "A:.6,C:.4 B:.5,F:.3,J:.2 B:.4,C:.3,E:.2,F:.1" in
  let d3 = U.parse "A:.4,F:.4,P:.2 I:.3,L:.3,F:.1,T:.3 A" in
  let l = L.build ~tau_min:0.04 [ d1; d2; d3 ] in
  Alcotest.(check (list int)) "only d1" [ 0 ]
    (H.sorted_fst (L.query_string l ~pattern:"BF" ~tau:0.1));
  (* d1's relevance: BF at 0 = .3*.3 = .09 <= .1; BF at 1 = .3*.5 = .15 > .1 *)
  (match L.query_string l ~pattern:"BF" ~tau:0.1 with
  | [ (0, p) ] -> Alcotest.(check (float 1e-9)) "rel" 0.15 (Logp.to_prob p)
  | _ -> Alcotest.fail "expected exactly d1");
  (* at tau = 0.05, d2 (max .15) and d3 (.4*.1=.04 no) — d2's BF: .5*...?
     d2 BF at 1: F at 2 = .1 -> .5*.1 = .05; not > .05. BF at 0? B not at 0.
     So tau=.049: d1 and d2. *)
  Alcotest.(check (list int)) "tau .049" [ 0; 1 ]
    (H.sorted_fst (L.query_string l ~pattern:"BF" ~tau:0.049))

let test_or_vs_max_differ () =
  (* a document whose individual occurrences are below tau but whose OR
     combination exceeds it: listed by Rel_or, not by Rel_max *)
  let d = U.parse "B:.5 F:.5 B:.5 F:.5 B:.5 F:.5" in
  (* BF occurs at 0, 2, 4 each with .25; OR = .75 - .015625 = .734 *)
  let other = U.parse "A B C" in
  let lm = L.build ~tau_min:0.1 [ d; other ] in
  let lo = L.build ~relevance:L.Rel_or ~tau_min:0.1 [ d; other ] in
  let pat = Sym.of_string "BF" in
  Alcotest.(check (list int)) "max misses" []
    (H.sorted_fst (L.query lm ~pattern:pat ~tau:0.5));
  Alcotest.(check (list int)) "or lists" [ 0 ]
    (H.sorted_fst (L.query lo ~pattern:pat ~tau:0.5));
  (match L.query lo ~pattern:pat ~tau:0.5 with
  | [ (0, p) ] ->
      Alcotest.(check (float 1e-9)) "or value" (0.75 -. 0.015625) (Logp.to_prob p)
  | _ -> Alcotest.fail "expected d0")

let test_long_patterns () =
  let rng = H.rng_of_seed 73 in
  for _ = 1 to 40 do
    let docs =
      List.init (2 + Random.State.int rng 3) (fun _ ->
          H.random_ustring rng (20 + Random.State.int rng 15) 3 2)
    in
    let tau_min = 0.02 in
    let lm = L.build ~tau_min docs in
    let lo = L.build ~relevance:L.Rel_or ~tau_min docs in
    let e = L.engine lm in
    let m = Pti_core.Engine.max_short e + 1 + Random.State.int rng 5 in
    let d0 = List.hd docs in
    if m <= U.length d0 then begin
      let start = Random.State.int rng (U.length d0 - m + 1) in
      let pat = H.pattern_at rng d0 ~start ~m in
      let tau = tau_min +. Random.State.float rng 0.2 in
      Alcotest.(check (list int)) "long max"
        (want_max docs pat tau)
        (H.sorted_fst (L.query lm ~pattern:pat ~tau));
      Alcotest.(check (list int)) "long or"
        (want_or docs pat tau_min tau)
        (H.sorted_fst (L.query lo ~pattern:pat ~tau))
    end
  done

let test_build_validation () =
  Alcotest.(check bool) "empty collection" true
    (try
       ignore (L.build ~tau_min:0.1 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty document" true
    (try
       ignore (L.build ~tau_min:0.1 [ U.of_string "A"; U.make [||] ]);
       false
     with Invalid_argument _ -> true)

let test_accessors () =
  let docs = [ U.of_string "ABC"; U.of_string "DEF" ] in
  let l = L.build ~tau_min:0.1 docs in
  Alcotest.(check int) "n_docs" 2 (L.n_docs l);
  Alcotest.(check bool) "doc access" true (U.length (L.doc l 1) = 3);
  Alcotest.(check bool) "relevance default" true (L.relevance l = L.Rel_max);
  Alcotest.(check bool) "size" true (L.size_words l > 0)

let test_count_matches_query () =
  let rng = H.rng_of_seed 74 in
  for _ = 1 to 40 do
    let docs = random_docs rng in
    let l = L.build ~tau_min:0.1 docs in
    let pat = pattern_from_docs rng docs 5 in
    Alcotest.(check int) "count = |query|"
      (List.length (L.query l ~pattern:pat ~tau:0.15))
      (L.count l ~pattern:pat ~tau:0.15)
  done

let prop_listing =
  QCheck2.Test.make ~name:"listing rel_max = oracle (qcheck)" ~count:80
    QCheck2.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* tau_min = float_range 0.05 0.25 in
      let* tau_off = float_range 0.0 0.4 in
      return (seed, tau_min, tau_off))
    (fun (seed, tau_min, tau_off) ->
      let rng = H.rng_of_seed seed in
      let docs = random_docs rng in
      let tau = Float.min 0.9 (tau_min +. tau_off) in
      let pat = pattern_from_docs rng docs 6 in
      let l = L.build ~tau_min docs in
      H.sorted_fst (L.query l ~pattern:pat ~tau) = want_max docs pat tau)

let () =
  Alcotest.run "pti_listing"
    [
      ( "rel_max",
        [
          Alcotest.test_case "random vs oracle" `Quick test_rel_max_random;
          Alcotest.test_case "figure 2 worked example" `Quick test_figure2_example;
          Alcotest.test_case "count" `Quick test_count_matches_query;
          QCheck_alcotest.to_alcotest prop_listing;
        ] );
      ( "rel_or",
        [
          Alcotest.test_case "random vs oracle" `Quick test_rel_or_random;
          Alcotest.test_case "or lists what max misses" `Quick test_or_vs_max_differ;
        ] );
      ( "long_patterns",
        [ Alcotest.test_case "both metrics" `Quick test_long_patterns ] );
      ( "api",
        [
          Alcotest.test_case "build validation" `Quick test_build_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
    ]
